"""Routing modes: recurring clusters of routing vectors.

A *mode* is one HAC cluster of a series — a set of times whose vectors
are mutually similar. Modes may recur: a cluster can cover several
disjoint time segments, which is exactly the "is today's routing like a
mode I saw before?" question the paper asks. :class:`ModeSet` carries
the per-mode membership, the contiguous segments, and Φ statistics
within and between modes (the ``Φ(Mi, Mj)`` ranges quoted throughout
the paper's evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Optional, Sequence

import numpy as np

from .cluster import AdaptiveResult, LinkageMethod, adaptive_clusters
from .compare import UnknownPolicy, phi as phi_fn, similarity_matrix
from .series import VectorSeries

__all__ = ["Mode", "ModeSet", "find_modes", "mode_exemplar", "match_across"]


@dataclass(frozen=True)
class Mode:
    """One routing mode: a cluster of observation times."""

    mode_id: int
    indices: tuple[int, ...]  # positions in the series, ascending
    times: tuple[datetime, ...]
    segments: tuple[tuple[int, int], ...]  # inclusive index ranges

    @property
    def size(self) -> int:
        return len(self.indices)

    @property
    def recurring(self) -> bool:
        """True when the mode spans more than one contiguous segment."""
        return len(self.segments) > 1

    @property
    def start(self) -> datetime:
        return self.times[0]

    @property
    def end(self) -> datetime:
        return self.times[-1]


def _segments_of(indices: Sequence[int]) -> tuple[tuple[int, int], ...]:
    segments: list[tuple[int, int]] = []
    run_start = prev = indices[0]
    for index in indices[1:]:
        if index == prev + 1:
            prev = index
            continue
        segments.append((run_start, prev))
        run_start = prev = index
    segments.append((run_start, prev))
    return tuple(segments)


class ModeSet:
    """Modes of one series plus the similarity matrix they came from."""

    def __init__(
        self,
        series: VectorSeries,
        labels: np.ndarray,
        similarity: np.ndarray,
        threshold: float,
    ) -> None:
        if len(labels) != len(series):
            raise ValueError("labels length does not match series length")
        self.series = series
        self.labels = np.asarray(labels)
        self.similarity = similarity
        self.threshold = threshold
        self.modes: list[Mode] = []
        for mode_id in range(int(self.labels.max()) + 1 if len(labels) else 0):
            indices = tuple(int(i) for i in np.flatnonzero(self.labels == mode_id))
            times = tuple(series.times[i] for i in indices)
            self.modes.append(Mode(mode_id, indices, times, _segments_of(indices)))

    def __len__(self) -> int:
        return len(self.modes)

    def __getitem__(self, mode_id: int) -> Mode:
        return self.modes[mode_id]

    def mode_at(self, index: int) -> Mode:
        """The mode containing observation ``index``."""
        return self.modes[int(self.labels[index])]

    def phi_within(self, mode_id: int) -> tuple[float, float]:
        """(min, max) Φ over distinct pairs inside one mode.

        A singleton mode has no pairs; (1.0, 1.0) is returned since a
        vector is trivially identical to itself.
        """
        indices = list(self.modes[mode_id].indices)
        if len(indices) < 2:
            return (1.0, 1.0)
        block = self.similarity[np.ix_(indices, indices)]
        off_diagonal = block[~np.eye(len(indices), dtype=bool)]
        return (float(np.nanmin(off_diagonal)), float(np.nanmax(off_diagonal)))

    def phi_between(self, mode_a: int, mode_b: int) -> tuple[float, float]:
        """(min, max) Φ across two modes — the paper's Φ(Mi, Mj) range."""
        idx_a = list(self.modes[mode_a].indices)
        idx_b = list(self.modes[mode_b].indices)
        block = self.similarity[np.ix_(idx_a, idx_b)]
        return (float(np.nanmin(block)), float(np.nanmax(block)))

    def phi_between_mean(self, mode_a: int, mode_b: int) -> float:
        idx_a = list(self.modes[mode_a].indices)
        idx_b = list(self.modes[mode_b].indices)
        return float(np.nanmean(self.similarity[np.ix_(idx_a, idx_b)]))

    def recurring_modes(self) -> list[Mode]:
        """Modes that reappear after an interruption."""
        return [mode for mode in self.modes if mode.recurring]

    def timeline(self) -> list[tuple[int, datetime, datetime]]:
        """Chronological (mode_id, segment_start_time, segment_end_time)."""
        entries: list[tuple[int, int, int]] = []
        for mode in self.modes:
            for start, end in mode.segments:
                entries.append((start, end, mode.mode_id))
        entries.sort()
        return [
            (mode_id, self.series.times[start], self.series.times[end])
            for start, end, mode_id in entries
        ]

    def closest_prior_mode(self, mode_id: int) -> Optional[tuple[int, float]]:
        """The earlier mode most similar to ``mode_id`` (mean Φ), if any.

        This answers "is the current routing like a mode I saw before?":
        e.g. the paper's finding that B-Root mode (v) resembles the
        original mode (i) more than its immediate neighbours.
        """
        target_start = self.modes[mode_id].indices[0]
        best: Optional[tuple[int, float]] = None
        for other in self.modes:
            if other.mode_id == mode_id or other.indices[0] >= target_start:
                continue
            mean = self.phi_between_mean(mode_id, other.mode_id)
            if best is None or mean > best[1]:
                best = (other.mode_id, mean)
        return best


def mode_exemplar(modes: ModeSet, mode_id: int):
    """The mode's medoid: its member most similar to the other members.

    A mode's exemplar is the single vector an operator can keep around
    as "what routing looked like in that mode" — the object playbooks
    and cross-study comparisons match against.
    """
    mode = modes[mode_id]
    indices = list(mode.indices)
    if len(indices) == 1:
        return modes.series[indices[0]]
    block = modes.similarity[np.ix_(indices, indices)]
    mean_similarity = np.nanmean(block, axis=1)
    best = indices[int(np.argmax(mean_similarity))]
    return modes.series[best]


def match_across(
    ours: ModeSet,
    theirs: ModeSet,
    weights: Optional[np.ndarray] = None,
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
) -> list[tuple[int, int, float]]:
    """Match modes between two studies over the same networks.

    For every mode in ``ours``, finds the most similar mode in
    ``theirs`` by exemplar Φ — the cross-study form of "is the current
    routing a mode I saw in last year's study?" (§4.2.1 compares the
    end of 2019 against the end of 2024 this way). Returns
    ``(our_mode, their_mode, phi)`` triples.
    """
    if ours.series.networks != theirs.series.networks:
        raise ValueError("studies cover different networks")
    # Separate studies carry separate state catalogs; re-encode every
    # exemplar onto one shared catalog before comparing.
    from .vector import RoutingVector, StateCatalog

    shared = StateCatalog()
    networks = ours.series.networks

    def reencode(modeset: ModeSet, mode_id: int) -> RoutingVector:
        exemplar = mode_exemplar(modeset, mode_id)
        return RoutingVector.from_mapping(
            exemplar.to_mapping(), catalog=shared, networks=networks
        )

    their_exemplars = [
        (mode.mode_id, reencode(theirs, mode.mode_id)) for mode in theirs.modes
    ]
    results = []
    for mode in ours.modes:
        exemplar = reencode(ours, mode.mode_id)
        best_id, best_phi = -1, -1.0
        for their_id, their_exemplar in their_exemplars:
            similarity = phi_fn(exemplar, their_exemplar, weights=weights, policy=policy)
            if similarity > best_phi:
                best_id, best_phi = their_id, similarity
        results.append((mode.mode_id, best_id, best_phi))
    return results


def find_modes(
    series: VectorSeries,
    weights: Optional[np.ndarray] = None,
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
    method: LinkageMethod = "single",
    max_clusters: int = 15,
    min_cluster_size: int = 2,
    similarity: Optional[np.ndarray] = None,
) -> ModeSet:
    """Run the full mode-discovery pipeline on a series.

    Computes the all-pairs Φ matrix (unless one is supplied), clusters
    ``1 - Φ`` with HAC under the adaptive threshold rule, and wraps the
    result as a :class:`ModeSet`.
    """
    if similarity is None:
        similarity = similarity_matrix(series, weights, policy)
    distance = np.where(np.isnan(similarity), 1.0, 1.0 - similarity)
    np.fill_diagonal(distance, 0.0)
    result: AdaptiveResult = adaptive_clusters(
        distance,
        method=method,
        max_clusters=max_clusters,
        min_cluster_size=min_cluster_size,
    )
    return ModeSet(series, result.labels, similarity, result.threshold)
