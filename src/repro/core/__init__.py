"""Fenrir core: routing vectors, comparison, clustering, modes, detection."""

from .cleaning import (
    drop_networks,
    fold_micro_catchments,
    interpolate_series,
    map_unmapped_states,
    nearest_viable_hop,
)
from .cluster import AdaptiveResult, Linkage, adaptive_clusters, cut_linkage, hac_linkage
from .compare import (
    UnknownPolicy,
    distance_matrix,
    phi,
    phi_one_to_many,
    similarity_matrix,
    similarity_to_reference,
)
from .detect import (
    DetectedEvent,
    EventGroup,
    GroundTruthEntry,
    MaintenanceKind,
    ValidationReport,
    detect_events,
    group_entries,
    step_changes,
    validate_events,
)
from .latency import (
    compare_latency,
    latency_by_catchment,
    latency_timeseries,
    mean_latency,
    percentile_by_catchment,
)
from .explain import EventExplanation, explain_event
from .modes import Mode, ModeSet, find_modes, match_across, mode_exemplar
from .online import OnlineFenrir, OnlineUpdate
from .pipeline import Fenrir, FenrirConfig, FenrirReport
from .seasonality import SeasonalityReport, analyze_seasonality, estimate_period, lag_profile
from .series import VectorSeries
from .transition import TransitionMatrix, transition_matrix
from .vector import ERROR, OTHER, SPECIAL_STATES, UNKNOWN, RoutingVector, StateCatalog
from .weighting import address_weights, normalized, table_weights, uniform_weights

__all__ = [
    "AdaptiveResult",
    "DetectedEvent",
    "ERROR",
    "EventExplanation",
    "EventGroup",
    "explain_event",
    "Fenrir",
    "FenrirConfig",
    "FenrirReport",
    "GroundTruthEntry",
    "Linkage",
    "MaintenanceKind",
    "Mode",
    "ModeSet",
    "OnlineFenrir",
    "OnlineUpdate",
    "OTHER",
    "RoutingVector",
    "SeasonalityReport",
    "SPECIAL_STATES",
    "StateCatalog",
    "TransitionMatrix",
    "UNKNOWN",
    "UnknownPolicy",
    "ValidationReport",
    "VectorSeries",
    "adaptive_clusters",
    "address_weights",
    "analyze_seasonality",
    "compare_latency",
    "cut_linkage",
    "detect_events",
    "distance_matrix",
    "drop_networks",
    "estimate_period",
    "find_modes",
    "fold_micro_catchments",
    "group_entries",
    "hac_linkage",
    "interpolate_series",
    "lag_profile",
    "latency_by_catchment",
    "latency_timeseries",
    "map_unmapped_states",
    "match_across",
    "mean_latency",
    "mode_exemplar",
    "nearest_viable_hop",
    "normalized",
    "percentile_by_catchment",
    "phi",
    "phi_one_to_many",
    "similarity_matrix",
    "similarity_to_reference",
    "step_changes",
    "table_weights",
    "transition_matrix",
    "uniform_weights",
    "validate_events",
]
