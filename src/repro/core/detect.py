"""Event detection and ground-truth validation (§3).

Detection scans consecutive vector pairs: a routing event is a step (or
run of steps) whose change ``1 - Φ`` exceeds a threshold. The threshold
can be fixed or derived robustly from the series itself (median + k·MAD
of the step changes), since stable services differ widely in their
baseline churn.

Validation reproduces the paper's Table 4 protocol: operator log
entries are grouped (same operator within ten minutes), groups are
classed *external* (site drain, traffic engineering) or *internal*, and
detected events are matched against group windows. External groups
detected are true positives; internal groups detected are the paper's
"FP?" rows; detections matching no group at all are candidate
third-party routing changes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Optional, Sequence

import numpy as np

from .compare import UnknownPolicy, phi
from .series import VectorSeries

__all__ = [
    "DetectedEvent",
    "detect_events",
    "step_changes",
    "MaintenanceKind",
    "GroundTruthEntry",
    "EventGroup",
    "group_entries",
    "ValidationReport",
    "validate_events",
]


@dataclass(frozen=True)
class DetectedEvent:
    """A contiguous run of high-change steps in a series."""

    start: datetime  # time of the last vector before the change
    end: datetime  # time of the first vector after the change settles
    start_index: int
    end_index: int
    max_change: float  # largest per-step 1 - Φ inside the event

    def overlaps(self, window_start: datetime, window_end: datetime) -> bool:
        return self.start <= window_end and window_start <= self.end


def step_changes(
    series: VectorSeries,
    weights: Optional[np.ndarray] = None,
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
) -> np.ndarray:
    """Per-step change ``1 - Φ(t_i, t_{i+1})`` for consecutive vectors."""
    changes = np.empty(max(len(series) - 1, 0), dtype=np.float64)
    for index in range(len(series) - 1):
        changes[index] = 1.0 - phi(
            series[index], series[index + 1], weights=weights, policy=policy
        )
    return changes


def _adaptive_threshold(changes: np.ndarray, sensitivity: float) -> float:
    """Median + sensitivity·MAD of step changes, floored at a tiny epsilon."""
    if len(changes) == 0:
        return 1.0
    median = float(np.median(changes))
    mad = float(np.median(np.abs(changes - median)))
    return max(median + sensitivity * max(mad, 1e-6), 1e-4)


def detect_events(
    series: VectorSeries,
    weights: Optional[np.ndarray] = None,
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
    threshold: Optional[float] = None,
    sensitivity: float = 8.0,
    merge_gap: int = 1,
) -> list[DetectedEvent]:
    """Find routing events as runs of above-threshold step changes.

    ``threshold=None`` selects the robust adaptive threshold. Flagged
    steps separated by fewer than ``merge_gap`` quiet steps merge into
    one event — paper events (a drain plus its revert) often span
    several measurement rounds.
    """
    changes = step_changes(series, weights, policy)
    if threshold is None:
        threshold = _adaptive_threshold(changes, sensitivity)
    flagged = changes > threshold
    events: list[DetectedEvent] = []
    run_start: Optional[int] = None
    quiet = 0
    for index, is_flagged in enumerate(flagged):
        if is_flagged:
            if run_start is None:
                run_start = index
            quiet = 0
        elif run_start is not None:
            quiet += 1
            if quiet >= merge_gap:
                end_index = index - quiet + 1
                events.append(_make_event(series, changes, run_start, end_index))
                run_start = None
                quiet = 0
    if run_start is not None:
        events.append(_make_event(series, changes, run_start, len(flagged)))
    return events


def _make_event(
    series: VectorSeries, changes: np.ndarray, start: int, end: int
) -> DetectedEvent:
    return DetectedEvent(
        start=series.times[start],
        end=series.times[min(end, len(series) - 1)],
        start_index=start,
        end_index=end,
        max_change=float(changes[start:end].max()),
    )


# -- ground truth ----------------------------------------------------------


class MaintenanceKind(enum.Enum):
    """Operator log entry categories from the paper's B-Root logs."""

    INTERNAL = "internal"  # no externally visible routing effect
    SITE_DRAIN = "site-drain"
    TRAFFIC_ENGINEERING = "traffic-engineering"

    @property
    def external(self) -> bool:
        return self is not MaintenanceKind.INTERNAL


@dataclass(frozen=True)
class GroundTruthEntry:
    """One raw maintenance-log line."""

    time: datetime
    operator: str
    kind: MaintenanceKind
    note: str = ""


@dataclass
class EventGroup:
    """Log entries by one operator within the grouping window."""

    entries: list[GroundTruthEntry] = field(default_factory=list)

    @property
    def start(self) -> datetime:
        return min(entry.time for entry in self.entries)

    @property
    def end(self) -> datetime:
        return max(entry.time for entry in self.entries)

    @property
    def operator(self) -> str:
        return self.entries[0].operator

    @property
    def external(self) -> bool:
        """A group is external if any member event is."""
        return any(entry.kind.external for entry in self.entries)

    @property
    def kinds(self) -> set[MaintenanceKind]:
        return {entry.kind for entry in self.entries}


def group_entries(
    entries: Sequence[GroundTruthEntry],
    window: timedelta = timedelta(minutes=10),
) -> list[EventGroup]:
    """Group entries by operator within ``window`` (paper: 10 minutes).

    Entries chain: each entry joins the group if it is within the
    window of the group's *latest* entry by the same operator.
    """
    groups: list[EventGroup] = []
    latest_group: dict[str, EventGroup] = {}
    for entry in sorted(entries, key=lambda item: item.time):
        current = latest_group.get(entry.operator)
        if current is not None and entry.time - current.end <= window:
            current.entries.append(entry)
        else:
            current = EventGroup([entry])
            groups.append(current)
            latest_group[entry.operator] = current
    return groups


@dataclass
class ValidationReport:
    """Table 4: confusion counts of ground truth vs detected events."""

    true_positive: int
    false_negative: int
    true_negative: int
    false_positive: int  # internal groups that matched a detection ("FP?")
    unmatched_detections: int  # candidate third-party changes ("(*)")
    matched_external: list[EventGroup] = field(default_factory=list)
    missed_external: list[EventGroup] = field(default_factory=list)
    extra_events: list[DetectedEvent] = field(default_factory=list)

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else float("nan")

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else float("nan")

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positive
            + self.true_negative
            + self.false_positive
            + self.false_negative
        )
        return (self.true_positive + self.true_negative) / total if total else float("nan")


def validate_events(
    detected: Sequence[DetectedEvent],
    groups: Sequence[EventGroup],
    tolerance: timedelta = timedelta(minutes=10),
) -> ValidationReport:
    """Match detections against ground-truth groups (Table 4 protocol).

    A group is *detected* when any detection overlaps its window padded
    by ``tolerance``. Detections overlapping no group are counted as
    unmatched — Fenrir's candidate third-party routing changes.
    """
    tp = fn = tn = fp = 0
    matched_external: list[EventGroup] = []
    missed_external: list[EventGroup] = []
    used: set[int] = set()

    for group in groups:
        window_start = group.start - tolerance
        window_end = group.end + tolerance
        hits = [
            index
            for index, event in enumerate(detected)
            if event.overlaps(window_start, window_end)
        ]
        if group.external:
            if hits:
                tp += 1
                matched_external.append(group)
            else:
                fn += 1
                missed_external.append(group)
        else:
            if hits:
                fp += 1
            else:
                tn += 1
        used.update(hits)

    extra = [event for index, event in enumerate(detected) if index not in used]
    return ValidationReport(
        true_positive=tp,
        false_negative=fn,
        true_negative=tn,
        false_positive=fp,
        unmatched_detections=len(extra),
        matched_external=matched_external,
        missed_external=missed_external,
        extra_events=extra,
    )
