"""Transition matrices between two routing vectors (§2.7).

``T(t,t',s,s')`` counts the networks that were in state ``s`` at time
``t`` and are in state ``s'`` at ``t'``. A quiescent network yields a
diagonal matrix equal to the aggregates A(t) = A(t'); catchment shifts
show up off the diagonal (Table 3's STR→NAP drain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .vector import RoutingVector, StateCatalog

__all__ = ["TransitionMatrix", "transition_matrix"]


@dataclass
class TransitionMatrix:
    """An |S|×|S| matrix of network movements between two vectors."""

    counts: np.ndarray  # float64 (weighted) or int64 counts
    catalog: StateCatalog

    def count(self, initial: str, subsequent: str) -> float:
        """Networks moving from ``initial`` to ``subsequent``."""
        i = self.catalog.lookup(initial)
        j = self.catalog.lookup(subsequent)
        if i is None or j is None:
            raise KeyError(f"unknown state: {initial!r} or {subsequent!r}")
        return float(self.counts[i, j])

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    def stayed(self) -> float:
        """Total weight on the diagonal (networks that did not move)."""
        return float(np.trace(self.counts))

    def moved(self) -> float:
        return self.total - self.stayed()

    def departures_from(self, state: str) -> dict[str, float]:
        """Where networks starting in ``state`` ended up (excluding stays)."""
        i = self.catalog.lookup(state)
        if i is None:
            raise KeyError(f"unknown state: {state!r}")
        return {
            self.catalog.label(j): float(self.counts[i, j])
            for j in range(len(self.catalog))
            if j != i and self.counts[i, j]
        }

    def arrivals_to(self, state: str) -> dict[str, float]:
        """Where networks ending in ``state`` came from (excluding stays)."""
        j = self.catalog.lookup(state)
        if j is None:
            raise KeyError(f"unknown state: {state!r}")
        return {
            self.catalog.label(i): float(self.counts[i, j])
            for i in range(len(self.catalog))
            if i != j and self.counts[i, j]
        }

    def top_movements(self, limit: int = 5) -> list[tuple[str, str, float]]:
        """The largest off-diagonal flows, descending."""
        flows = []
        size = len(self.catalog)
        for i in range(size):
            for j in range(size):
                if i != j and self.counts[i, j]:
                    flows.append(
                        (self.catalog.label(i), self.catalog.label(j), float(self.counts[i, j]))
                    )
        flows.sort(key=lambda item: -item[2])
        return flows[:limit]

    def row_sums(self) -> dict[str, float]:
        """Initial-state totals; equals the aggregate A(t)."""
        sums = self.counts.sum(axis=1)
        return {
            self.catalog.label(i): float(sums[i])
            for i in range(len(self.catalog))
            if sums[i]
        }

    def column_sums(self) -> dict[str, float]:
        """Subsequent-state totals; equals the aggregate A(t')."""
        sums = self.counts.sum(axis=0)
        return {
            self.catalog.label(j): float(sums[j])
            for j in range(len(self.catalog))
            if sums[j]
        }


def transition_matrix(
    a: RoutingVector,
    b: RoutingVector,
    weights: Optional[np.ndarray] = None,
) -> TransitionMatrix:
    """Build ``T(t, t')`` between two vectors over the same networks."""
    if a.networks != b.networks:
        raise ValueError("vectors cover different networks")
    if a.catalog is not b.catalog:
        raise ValueError("vectors use different state catalogs")
    size = len(a.catalog)
    flat = a.codes.astype(np.int64) * size + b.codes.astype(np.int64)
    if weights is None:
        counts = np.bincount(flat, minlength=size * size).astype(np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != a.codes.shape:
            raise ValueError("weights length does not match networks")
        counts = np.bincount(flat, weights=weights, minlength=size * size)
    return TransitionMatrix(counts.reshape(size, size), a.catalog)
