"""Event explanations: turning a detection into an operator briefing.

The paper's closing loop (§2.7-§2.8, §4) is: Fenrir flags a change →
the operator asks *what moved, how much, is it a mode I know, and did
latency change?* :func:`explain_event` assembles exactly that briefing
from a pipeline report and an optional RTT source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from .detect import DetectedEvent
from .latency import compare_latency
from .pipeline import FenrirReport
from .transition import TransitionMatrix, transition_matrix

__all__ = ["EventExplanation", "explain_event"]


@dataclass
class EventExplanation:
    """Everything an operator needs to triage one detected event."""

    event: DetectedEvent
    moved_fraction: float
    top_movements: list[tuple[str, str, float]]
    transition: TransitionMatrix
    mode_before: int
    mode_after: int
    known_mode: bool  # did routing land in a previously seen mode?
    recurred_mode: Optional[int]  # that mode's id, when it is an old one
    latency: dict[str, float] = field(default_factory=dict)

    def headline(self) -> str:
        """A one-line summary, the paper's operator question answered."""
        parts = [
            f"{self.event.start:%Y-%m-%d %H:%M}:",
            f"{self.moved_fraction:.0%} of networks changed catchment",
        ]
        if self.top_movements:
            source, target, count = self.top_movements[0]
            parts.append(f"(largest flow {source}->{target}, {count:.0f} networks)")
        if self.recurred_mode is not None:
            parts.append(f"- routing returned to known mode {self.recurred_mode}")
        elif not self.known_mode:
            parts.append("- this is a NEW routing mode")
        if "delta_ms" in self.latency:
            delta = self.latency["delta_ms"]
            direction = "slower" if delta > 0 else "faster"
            parts.append(f"- mean latency {abs(delta):.1f} ms {direction}")
        return " ".join(parts)


def explain_event(
    report: FenrirReport,
    event: DetectedEvent,
    rtts_before: Optional[Mapping[str, float]] = None,
    rtts_after: Optional[Mapping[str, float]] = None,
) -> EventExplanation:
    """Build the triage briefing for one detected event.

    Compares the vectors on either side of the event window, checks
    whether the post-event routing matches a mode seen *before* the
    event (recurrence), and, when RTTs are supplied, quantifies the
    latency impact for the networks that moved.
    """
    series = report.cleaned
    before_index = event.start_index
    after_index = min(event.end_index, len(series) - 1)
    before = series[before_index]
    after = series[after_index]

    table = transition_matrix(before, after, weights=report.weights)
    moved_fraction = table.moved() / table.total if table.total else 0.0

    labels = report.modes.labels
    mode_before = int(labels[before_index])
    mode_after = int(labels[after_index])
    earlier_modes = set(int(label) for label in labels[:before_index])
    known = mode_after in earlier_modes
    recurred = mode_after if (known and mode_after != mode_before) else None

    latency: dict[str, float] = {}
    if rtts_before is not None:
        latency = compare_latency(
            before, after, rtts_before, rtts_after, weights=report.weights
        )

    return EventExplanation(
        event=event,
        moved_fraction=float(moved_fraction),
        top_movements=table.top_movements(5),
        transition=table,
        mode_before=mode_before,
        mode_after=mode_after,
        known_mode=known,
        recurred_mode=recurred,
        latency=latency,
    )
