"""Parallel similarity engine: tiled kernels, shared memory, caching.

The all-pairs weighted Gower comparison Φ(t,t') (§2.6.1) is Fenrir's
core cost — O(T²·N) over routing vectors. This package computes it as
an upper-triangular tile plan dispatched to a process pool over a
shared-memory copy of the series, with an optional content-addressed
on-disk cache so repeated runs skip the computation entirely.

``SimilarityEngine(n_jobs=1)`` runs the serial reference from
:mod:`repro.core.compare`; every parallel configuration is tested to
reproduce it to 1e-12. See ``docs/performance.md``.
"""

from .cache import MatrixCache, matrix_cache_key
from .engine import EngineStats, SimilarityEngine, parallel_similarity_matrix
from .sharedmem import AttachedBundle, BundleSpec, SharedBundle, attach
from .tiling import (
    DEFAULT_TILE_SIZE,
    FactoredSeries,
    Tile,
    factor_series,
    factored_from_arrays,
    plan_tiles,
    reflect_lower,
)

__all__ = [
    "MatrixCache",
    "matrix_cache_key",
    "EngineStats",
    "SimilarityEngine",
    "parallel_similarity_matrix",
    "AttachedBundle",
    "BundleSpec",
    "SharedBundle",
    "attach",
    "DEFAULT_TILE_SIZE",
    "FactoredSeries",
    "Tile",
    "factor_series",
    "factored_from_arrays",
    "plan_tiles",
    "reflect_lower",
]
