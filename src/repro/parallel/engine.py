"""The parallel similarity engine: tiles × processes × cache.

:class:`SimilarityEngine` is a drop-in replacement for
:func:`repro.core.compare.similarity_matrix` that

1. checks the on-disk :class:`~repro.parallel.cache.MatrixCache`
   (content-hash keyed on codes, weights and policy) and returns
   immediately on a hit;
2. with ``n_jobs == 1`` runs the serial reference implementation —
   the oracle every parallel result is tested against;
3. with ``n_jobs > 1`` factors the series once, publishes the
   factorization to shared memory, fans the upper-triangular tile plan
   out over a ``ProcessPoolExecutor`` (workers re-map the shared pages
   in their initializer and never unpickle the series), then merges
   tiles and mirrors the lower triangle.

Both paths produce matrices equal to within 1e-12 of each other; the
equivalence grid in ``tests/test_parallel_equivalence.py`` enforces it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter as _perf_counter
from typing import Optional, Union

import numpy as np

from ..core.compare import UnknownPolicy, _check_weights, similarity_matrix
from ..core.series import VectorSeries
from ..obs import get_registry, span
from .cache import MatrixCache, matrix_cache_key
from .sharedmem import AttachedBundle, BundleSpec, SharedBundle, attach
from .tiling import (
    DEFAULT_TILE_SIZE,
    Tile,
    denominator_tile,
    factor_series,
    factored_from_arrays,
    match_tile,
    plan_tiles,
    reflect_lower,
)

__all__ = ["EngineStats", "SimilarityEngine", "parallel_similarity_matrix"]


def resolve_jobs(n_jobs: int) -> int:
    """Normalize an ``n_jobs`` request; 0 or negative means "all cores"."""
    if n_jobs <= 0:
        return os.cpu_count() or 1
    return n_jobs


@dataclass
class EngineStats:
    """Observable counters for one engine instance."""

    serial_runs: int = 0
    parallel_runs: int = 0
    tiles_computed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


# -- worker side --------------------------------------------------------------
#
# Pool initializer state. The parent factors the series once and
# publishes the factorization's arrays; each worker re-wraps the shared
# pages in O(1). Tile tasks then only carry four ints.

_worker_bundle: Optional[AttachedBundle] = None
_worker_factored = None


def _worker_init(spec: BundleSpec, num_features: int, with_denominators: bool) -> None:
    global _worker_bundle, _worker_factored
    _worker_bundle = attach(spec)
    _worker_factored = factored_from_arrays(
        data=_worker_bundle["data"],
        indices=_worker_bundle["indices"],
        indptr=_worker_bundle["indptr"],
        num_features=num_features,
        known_weighted=_worker_bundle["known_weighted"] if with_denominators else None,
        known=_worker_bundle["known"] if with_denominators else None,
    )


def _worker_tile(
    tile_tuple: tuple[int, int, int, int],
) -> tuple[tuple[int, int, int, int], np.ndarray, Optional[np.ndarray], float]:
    # Workers time their own compute: the parent cannot see per-tile
    # cost from the result stream (arrival order reflects scheduling),
    # and worker processes have no channel to the parent's registry —
    # so the elapsed seconds ride back with the tile payload and the
    # parent observes them into `parallel_tile_seconds`.
    started = _perf_counter()
    tile = Tile(*tile_tuple)
    matches = match_tile(_worker_factored, tile)
    denominators = None
    if _worker_factored.known_weighted is not None:
        denominators = denominator_tile(_worker_factored, tile)
    return tile_tuple, matches, denominators, _perf_counter() - started


# -- parent side --------------------------------------------------------------


class SimilarityEngine:
    """Computes all-pairs Φ with optional multi-processing and caching."""

    def __init__(
        self,
        n_jobs: int = 1,
        tile_size: int = DEFAULT_TILE_SIZE,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if tile_size <= 0:
            raise ValueError(f"tile_size must be positive, got {tile_size}")
        self.n_jobs = resolve_jobs(n_jobs)
        self.tile_size = tile_size
        self.cache = MatrixCache(cache_dir) if cache_dir is not None else None
        self.stats = EngineStats()

    # -- public API ----------------------------------------------------------

    def similarity_matrix(
        self,
        series: VectorSeries,
        weights: Optional[np.ndarray] = None,
        policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
    ) -> np.ndarray:
        """All-pairs Φ; cache-checked, then serial or tiled-parallel."""
        codes = series.matrix
        num_times, num_networks = codes.shape
        checked_weights = _check_weights(weights, num_networks)
        registry = get_registry()

        key = None
        if self.cache is not None:
            key = matrix_cache_key(codes, weights, policy)
            cached = self.cache.load(key, num_times)
            if cached is not None:
                self.stats.cache_hits += 1
                registry.counter(
                    "parallel_cache_hits_total",
                    help="Similarity-matrix cache hits",
                ).inc()
                return cached
            self.stats.cache_misses += 1
            registry.counter(
                "parallel_cache_misses_total",
                help="Similarity-matrix cache misses",
            ).inc()

        if self.n_jobs == 1 or num_times < 2:
            with span("similarity.serial", observations=num_times):
                result = similarity_matrix(series, weights, policy)
            self.stats.serial_runs += 1
            registry.counter("parallel_serial_runs_total").inc()
        else:
            with span(
                "similarity.parallel",
                observations=num_times,
                jobs=self.n_jobs,
                tile_size=self.tile_size,
            ):
                result = self._parallel(codes, checked_weights, policy)
            self.stats.parallel_runs += 1
            registry.counter("parallel_runs_total").inc()

        if self.cache is not None and key is not None:
            self.cache.store(key, result)
        return result

    def distance_matrix(
        self,
        series: VectorSeries,
        weights: Optional[np.ndarray] = None,
        policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
    ) -> np.ndarray:
        """``1 - Φ`` with NaN → 1.0, matching the serial helper."""
        similarity = self.similarity_matrix(series, weights, policy)
        distance = 1.0 - similarity
        return np.where(np.isnan(distance), 1.0, distance)

    # -- parallel path -------------------------------------------------------

    def _parallel(
        self,
        codes: np.ndarray,
        weights: np.ndarray,
        policy: UnknownPolicy,
    ) -> np.ndarray:
        num_times = codes.shape[0]
        exclude = policy is UnknownPolicy.EXCLUDE
        tiles = plan_tiles(num_times, self.tile_size)
        matches = np.zeros((num_times, num_times), dtype=np.float64)
        denominators = (
            np.zeros((num_times, num_times), dtype=np.float64) if exclude else None
        )

        factored = factor_series(codes, weights, with_denominators=exclude)
        features = factored.features
        arrays = {
            "data": features.data,
            "indices": features.indices,
            "indptr": features.indptr,
        }
        if exclude:
            arrays["known_weighted"] = factored.known_weighted
            arrays["known"] = factored.known

        with SharedBundle(arrays) as shared:
            workers = min(self.n_jobs, len(tiles)) or 1
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_worker_init,
                initargs=(shared.spec, features.shape[1], exclude),
            ) as pool:
                tile_histogram = get_registry().histogram(
                    "parallel_tile_seconds",
                    help="Per-tile similarity kernel compute time (worker-side)",
                )
                tiles_counter = get_registry().counter(
                    "parallel_tiles_computed_total"
                )
                tile_results = pool.map(
                    _worker_tile,
                    [tile.as_tuple() for tile in tiles],
                    chunksize=max(1, len(tiles) // (4 * workers)),
                )
                for (
                    tile_tuple,
                    tile_matches,
                    tile_denominators,
                    tile_seconds,
                ) in tile_results:
                    tile = Tile(*tile_tuple)
                    matches[
                        tile.row_start : tile.row_stop,
                        tile.col_start : tile.col_stop,
                    ] = tile_matches
                    if denominators is not None and tile_denominators is not None:
                        denominators[
                            tile.row_start : tile.row_stop,
                            tile.col_start : tile.col_stop,
                        ] = tile_denominators
                    self.stats.tiles_computed += 1
                    tiles_counter.inc()
                    tile_histogram.observe(tile_seconds)

        reflect_lower(matches)
        if not exclude:
            total = weights.sum()
            if total == 0:
                return np.full((num_times, num_times), np.nan)
            return matches / total
        reflect_lower(denominators)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(denominators > 0, matches / denominators, np.nan)


def parallel_similarity_matrix(
    series: VectorSeries,
    weights: Optional[np.ndarray] = None,
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
    n_jobs: int = 1,
    tile_size: int = DEFAULT_TILE_SIZE,
    cache_dir: Optional[Union[str, Path]] = None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`SimilarityEngine`."""
    engine = SimilarityEngine(n_jobs=n_jobs, tile_size=tile_size, cache_dir=cache_dir)
    return engine.similarity_matrix(series, weights, policy)
