"""Tile plans and tile kernels for the parallel similarity engine.

The T×T Φ matrix is symmetric, so only the upper triangle of a
row-block × column-block tiling needs computing; :func:`plan_tiles`
enumerates those tiles and :func:`reflect_lower` mirrors the finished
upper triangle down.

Each tile is evaluated against a :class:`FactoredSeries`: the T×N code
matrix is re-expressed as a sparse "feature" matrix ``E`` with one
column per (network, known-state) pair and value ``sqrt(w[n])``, so the
weighted known-match counts of §2.6.1 become a single sparse product::

    matches[i, j] = Σ_n w[n] · [codes[i,n] == codes[j,n] != unknown]
                  = (E @ E.T)[i, j]

This factorization is state-count independent — it is equally fast for
B-root's handful of sites and Google's thousands of front ends — and a
tile only touches the row slices ``E[rows]`` / ``E[cols]``, which is
what makes block dispatch to workers cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sparse

from ..core.vector import UNKNOWN_CODE

__all__ = [
    "Tile",
    "plan_tiles",
    "FactoredSeries",
    "factor_series",
    "match_tile",
    "denominator_tile",
    "reflect_lower",
]

DEFAULT_TILE_SIZE = 64


@dataclass(frozen=True)
class Tile:
    """One rectangular block of the (upper-triangular) T×T matrix."""

    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.row_stop - self.row_start, self.col_stop - self.col_start)

    @property
    def on_diagonal(self) -> bool:
        return self.row_start == self.col_start

    def as_tuple(self) -> tuple[int, int, int, int]:
        return (self.row_start, self.row_stop, self.col_start, self.col_stop)


def plan_tiles(num_times: int, tile_size: int = DEFAULT_TILE_SIZE) -> list[Tile]:
    """Upper-triangular block tiling of a ``num_times``-square matrix.

    Every (i, j) with ``i <= j`` lands in exactly one tile; the strictly
    lower triangle is recovered afterwards by :func:`reflect_lower`.
    """
    if tile_size <= 0:
        raise ValueError(f"tile_size must be positive, got {tile_size}")
    if num_times < 0:
        raise ValueError(f"num_times must be non-negative, got {num_times}")
    tiles = []
    for row_start in range(0, num_times, tile_size):
        row_stop = min(num_times, row_start + tile_size)
        for col_start in range(row_start, num_times, tile_size):
            col_stop = min(num_times, col_start + tile_size)
            tiles.append(Tile(row_start, row_stop, col_start, col_stop))
    return tiles


@dataclass
class FactoredSeries:
    """The sparse factorization the tile kernels consume.

    ``features`` is the sqrt-weighted (network, state) indicator matrix
    described in the module docstring. ``known_weighted`` / ``known``
    exist only under :attr:`UnknownPolicy.EXCLUDE`, where the
    denominator of Φ is itself pair-dependent.
    """

    num_times: int
    features: sparse.csr_matrix
    total_weight: float
    known_weighted: Optional[np.ndarray] = None  # (known * w), float64 T×N
    known: Optional[np.ndarray] = None  # known mask as float64 T×N


def factor_series(
    codes: np.ndarray,
    weights: np.ndarray,
    with_denominators: bool = False,
) -> FactoredSeries:
    """Build the tile-kernel inputs from a T×N code matrix and weights."""
    num_times, num_networks = codes.shape
    known_mask = codes != UNKNOWN_CODE
    rows, cols = np.nonzero(known_mask)
    # One feature per (network, state) pair, compacted to the pairs that
    # actually occur so the sparse matrix stays narrow.
    num_states = int(codes.max()) + 1 if codes.size else 1
    raw_features = cols.astype(np.int64) * num_states + codes[rows, cols]
    unique_features, feature_ids = np.unique(raw_features, return_inverse=True)
    values = np.sqrt(weights)[cols]
    # np.nonzero walks the matrix row-major, so ``rows`` is already
    # sorted: assemble the CSR directly instead of paying the
    # COO-conversion sort.
    counts = np.bincount(rows, minlength=num_times) if len(rows) else np.zeros(
        num_times, dtype=np.int64
    )
    indptr = np.zeros(num_times + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    features = sparse.csr_matrix(
        (values, feature_ids.astype(np.int32), indptr),
        shape=(num_times, len(unique_features)),
    )
    factored = FactoredSeries(
        num_times=num_times,
        features=features,
        total_weight=float(weights.sum()),
    )
    if with_denominators:
        known = known_mask.astype(np.float64)
        factored.known_weighted = known * weights
        factored.known = known
    return factored


def factored_from_arrays(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    num_features: int,
    known_weighted: Optional[np.ndarray] = None,
    known: Optional[np.ndarray] = None,
    total_weight: float = float("nan"),
) -> FactoredSeries:
    """Rebuild a :class:`FactoredSeries` from its raw (shared) arrays.

    The CSR constituents are wrapped without copying, so workers
    attaching shared-memory segments pay O(1) to reconstruct the
    factorization the parent built once.
    """
    num_times = len(indptr) - 1
    features = sparse.csr_matrix(
        (data, indices, indptr), shape=(num_times, num_features), copy=False
    )
    return FactoredSeries(
        num_times=num_times,
        features=features,
        total_weight=total_weight,
        known_weighted=known_weighted,
        known=known,
    )


def match_tile(factored: FactoredSeries, tile: Tile) -> np.ndarray:
    """Weighted known-match counts for one tile: ``(E_r @ E_c.T)``."""
    rows = factored.features[tile.row_start : tile.row_stop]
    cols = factored.features[tile.col_start : tile.col_stop]
    return np.asarray((rows @ cols.T).todense(), dtype=np.float64)


def denominator_tile(factored: FactoredSeries, tile: Tile) -> np.ndarray:
    """EXCLUDE-policy denominators for one tile: Σ_n w[n]·[both known]."""
    if factored.known_weighted is None or factored.known is None:
        raise ValueError("factored series was built without denominators")
    rows = factored.known_weighted[tile.row_start : tile.row_stop]
    cols = factored.known[tile.col_start : tile.col_stop]
    return rows @ cols.T


def reflect_lower(matrix: np.ndarray) -> np.ndarray:
    """Mirror the upper triangle onto the strictly lower triangle."""
    lower = np.tril_indices(matrix.shape[0], k=-1)
    matrix[lower] = matrix.T[lower]
    return matrix
