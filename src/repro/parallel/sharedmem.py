"""Zero-copy transport of series data to worker processes.

Workers must never receive the series by pickle — at the paper's scale
(1.9k rounds × 5M blocks) that would serialize gigabytes per task.
Instead the parent copies the arrays the tile kernels consume (the
sparse factorization of the code matrix, plus the dense known-mask
products under the EXCLUDE policy) into
``multiprocessing.shared_memory`` segments once, ships only the tiny
:class:`BundleSpec` (segment names + shapes + dtypes) to the pool
initializer, and every worker maps the same physical pages.

Lifecycle: the parent owns the segments (:class:`SharedBundle` is a
context manager that unlinks on exit); workers :func:`attach` read-only
views and close their handles when the pool dies.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

__all__ = ["SharedArraySpec", "BundleSpec", "SharedBundle", "AttachedBundle", "attach"]


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything needed to re-map one shared array in another process."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class BundleSpec:
    """Picklable handle to a set of named arrays in shared memory."""

    arrays: tuple[tuple[str, SharedArraySpec], ...]

    def __getitem__(self, key: str) -> SharedArraySpec:
        for name, spec in self.arrays:
            if name == key:
                return spec
        raise KeyError(key)


def _publish(array: np.ndarray) -> tuple[shared_memory.SharedMemory, SharedArraySpec]:
    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    return segment, SharedArraySpec(segment.name, array.shape, array.dtype.str)


class SharedBundle:
    """Parent-side owner of a named set of shared-memory arrays."""

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        published: list[tuple[str, SharedArraySpec]] = []
        try:
            for name, array in arrays.items():
                segment, spec = _publish(array)
                self._segments.append(segment)
                published.append((name, spec))
        except Exception:
            self.close()
            raise
        self.spec = BundleSpec(arrays=tuple(published))

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # already unlinked
                pass
        self._segments = []

    def __enter__(self) -> "SharedBundle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AttachedBundle:
    """Worker-side read-only mapping of a published bundle."""

    def __init__(self, spec: BundleSpec) -> None:
        self._handles: list[shared_memory.SharedMemory] = []
        self.arrays: dict[str, np.ndarray] = {}
        for name, array_spec in spec.arrays:
            handle = shared_memory.SharedMemory(name=array_spec.name)
            self._handles.append(handle)
            self.arrays[name] = np.ndarray(
                array_spec.shape, dtype=np.dtype(array_spec.dtype), buffer=handle.buf
            )

    def __getitem__(self, key: str) -> np.ndarray:
        return self.arrays[key]

    def close(self) -> None:
        # Views alias the mapped buffers, so drop them before closing.
        self.arrays = {}
        for handle in self._handles:
            handle.close()
        self._handles = []


def attach(spec: BundleSpec) -> AttachedBundle:
    """Map a published bundle in the current (worker) process."""
    return AttachedBundle(spec)
