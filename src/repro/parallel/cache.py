"""On-disk cache for computed similarity matrices.

Benchmarks, ablations and repeated CLI runs recompute the same Φ
matrix over and over; at O(T²·N) that dominates wall time. The cache
keys a finished matrix on a content hash of *everything the result
depends on* — the code matrix bytes, the weight vector, the unknown
policy, and a kernel version stamp — so any mutation of the inputs
misses and recomputes, while byte-identical reruns load in O(T²).

Entries are a ``<key>.npy`` matrix plus a ``<key>.sha256`` digest of
the matrix bytes. Loads verify the digest, so truncated or corrupted
files are detected, evicted, and transparently recomputed instead of
poisoning downstream clustering.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..core.compare import UnknownPolicy
from ..obs import get_registry

__all__ = ["matrix_cache_key", "MatrixCache"]

# Bump whenever the engine's numerical behaviour changes, so stale
# entries from older kernels can never be returned.
KERNEL_VERSION = 1


def matrix_cache_key(
    codes: np.ndarray,
    weights: Optional[np.ndarray],
    policy: UnknownPolicy,
) -> str:
    """Content hash of one similarity computation's inputs."""
    digest = hashlib.sha256()
    digest.update(f"fenrir-similarity-v{KERNEL_VERSION}".encode())
    digest.update(f"|policy={policy.value}".encode())
    digest.update(f"|shape={codes.shape}|dtype={codes.dtype.str}".encode())
    digest.update(np.ascontiguousarray(codes).tobytes())
    if weights is None:
        digest.update(b"|weights=none")
    else:
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        digest.update(f"|weights={weights.shape}".encode())
        digest.update(weights.tobytes())
    return digest.hexdigest()


def _matrix_digest(matrix: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(matrix).tobytes()).hexdigest()


class MatrixCache:
    """Content-addressed store of T×T matrices under one directory.

    Counters (``hits``, ``misses``, ``evictions``) make cache behaviour
    observable to tests and benchmarks.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _matrix_path(self, key: str) -> Path:
        return self.directory / f"{key}.npy"

    def _digest_path(self, key: str) -> Path:
        return self.directory / f"{key}.sha256"

    def load(self, key: str, expected_size: int) -> Optional[np.ndarray]:
        """The cached matrix for ``key``, or None on miss/corruption."""
        matrix_path = self._matrix_path(key)
        digest_path = self._digest_path(key)
        if not matrix_path.exists() or not digest_path.exists():
            self.misses += 1
            return None
        try:
            matrix = np.load(matrix_path, allow_pickle=False)
            stored_digest = digest_path.read_text().strip()
            if matrix.shape != (expected_size, expected_size):
                raise ValueError(f"cached shape {matrix.shape} != T={expected_size}")
            if _matrix_digest(matrix) != stored_digest:
                raise ValueError("cached matrix bytes do not match stored digest")
        except Exception:
            # Truncated download, torn write, or tampering: evict and
            # let the caller recompute rather than crash.
            get_registry().counter(
                "parallel_cache_corrupt_evictions_total",
                help="cache entries evicted after failing validation",
            ).inc()
            self.evict(key)
            self.misses += 1
            return None
        self.hits += 1
        return matrix

    def store(self, key: str, matrix: np.ndarray) -> None:
        """Atomically persist ``matrix`` under ``key``."""
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".npy.tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as stream:
                np.save(stream, matrix, allow_pickle=False)
            os.replace(temp_name, self._matrix_path(key))
        except Exception:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
            raise
        self._digest_path(key).write_text(_matrix_digest(matrix) + "\n")

    def evict(self, key: str) -> None:
        """Drop one entry (missing files are fine)."""
        removed = False
        for path in (self._matrix_path(key), self._digest_path(key)):
            if path.exists():
                path.unlink()
                removed = True
        if removed:
            self.evictions += 1

    def clear(self) -> int:
        """Remove every entry; returns the number of matrices dropped."""
        count = 0
        for path in self.directory.glob("*.npy"):
            path.unlink()
            count += 1
        for path in self.directory.glob("*.sha256"):
            path.unlink()
        return count

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.npy"))
