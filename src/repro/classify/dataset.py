"""Labeled transition datasets from the ground-truth study generator.

:func:`repro.datasets.groundtruth.generate` scripts every event class
the taxonomy names — site drains and traffic engineering from the
operator log, permanent third-party link cuts, and (with
``num_flaps``) transient third-party link flaps. This module replays
the fleet around each scripted event time and featurizes the
transition, yielding a labeled matrix for training and evaluation:

* ``drain`` — :class:`SiteDrain`, a site vanishes and comes back;
* ``traffic-engineering`` — :class:`ScopeChange` to the customer
  cone, a site's announcement scope shrinks permanently;
* ``third-party-flap`` — :class:`LinkOutage`, a transit link down
  transiently; catchments shift and shift back;
* ``cable-cut`` — :class:`LinkRemove`, the same shift, permanent.

Every measurement is driven by the study's seeded rng chain, the VP
iteration order is sorted, and the featurizer rounds before
serializing — so the same ``DatasetConfig`` always produces the same
:meth:`TransitionDataset.digest`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..anycast.atlas import AtlasFleet
from ..anycast.service import AnycastService
from ..core.detect import MaintenanceKind
from ..core.vector import RoutingVector, StateCatalog
from ..datasets import groundtruth
from ..datasets.builders import SiteSpec
from ..latency.model import RttModel
from ..net.addr import IPv4Address
from ..net.geo import GeoPoint
from ..traceroute.engine import TracerouteEngine
from .features import FEATURE_NAMES, FEATURE_WIDTH, featurize
from .model import LABELS, dataset_digest

__all__ = [
    "DatasetConfig",
    "TransitionDataset",
    "build_dataset",
    "QUICK_TRAIN",
    "QUICK_EVAL",
    "FULL_TRAIN",
    "FULL_EVAL",
]

#: Anycast destination probed by the synthetic traceroutes (TEST-NET-1).
_TRACE_DESTINATION = IPv4Address((192 << 24) | (0 << 16) | (2 << 8) | 1)

#: How many moved VPs get traceroute hop features per event.
_TRACE_SAMPLE = 8

#: Measurement offsets around each scripted event time. The revert
#: probe lands after every transient window (drains cap at 36 minutes,
#: flaps at ``flap_duration``), which is what separates the transient
#: classes from the permanent ones.
_BEFORE = timedelta(minutes=6)
_AFTER = timedelta(minutes=6)
_REVERT = timedelta(minutes=66)


#: Classification studies use more sites and richer multihoming than
#: Table 4: the cuts-only third-party candidate pool must be deep
#: enough to place every scripted cut *and* flap with a visible
#: catchment shift, and TE events must land on distinct sites.
_SITE_SPECS = [
    SiteSpec("LAX", "LAX", num_providers=4),
    SiteSpec("MIA", "MIA", num_providers=3),
    SiteSpec("SIN", "SIN", num_providers=3),
    SiteSpec("IAD", "IAD", num_providers=4),
    SiteSpec("AMS", "AMS", num_providers=3),
    SiteSpec("NRT", "NRT", num_providers=3),
    SiteSpec("GRU", "GRU", num_providers=3),
    SiteSpec("FRA", "FRA", num_providers=4),
    SiteSpec("SYD", "SYD", num_providers=3),
    SiteSpec("ORD", "ORD", num_providers=4),
]

#: TE windows are bounded (long enough to read as permanent at the
#: revert probe, short enough that scoped sites free up again).
_TE_DURATION = timedelta(days=2)


@dataclass(frozen=True)
class DatasetConfig:
    """Everything :func:`build_dataset` needs; hashable and explicit."""

    seed: int
    events_per_class: int = 10
    num_vps: int = 150
    days: int = 40
    num_tier1: int = 4
    num_tier2: int = 44
    num_stubs: int = 360
    loss_probability: float = 0.0005
    min_visible_shift: float = 0.015


#: The canonical train/eval study pairs: different seeds, therefore
#: different topologies, fleets, and event placements — evaluation
#: measures generalization, not memorization.
QUICK_TRAIN = DatasetConfig(seed=1103, events_per_class=8)
QUICK_EVAL = DatasetConfig(seed=2207, events_per_class=8)
FULL_TRAIN = DatasetConfig(seed=1103, events_per_class=10)
FULL_EVAL = DatasetConfig(seed=2207, events_per_class=10)


@dataclass
class TransitionDataset:
    """A labeled feature matrix plus enough context to benchmark on."""

    features: np.ndarray  # (n, FEATURE_WIDTH) float64
    labels: Tuple[str, ...]
    times: Tuple[str, ...]  # event times, isoformat
    config: DatasetConfig
    #: A few raw (before, after) state mappings, for latency
    #: benchmarking of the wire-shaped featurize path.
    sample_transitions: List[Tuple[Dict[str, str], Dict[str, str]]] = field(
        default_factory=list
    )

    def digest(self) -> str:
        """sha256 over the canonical feature/label bytes."""
        return dataset_digest(self.features, list(self.labels))

    def counts(self) -> Dict[str, int]:
        return {label: self.labels.count(label) for label in LABELS}


def _client_locations(
    fleet: AtlasFleet, service: AnycastService
) -> Dict[str, GeoPoint]:
    locations: Dict[str, GeoPoint] = {}
    for vp in fleet.vps:
        node = service.scenario.topology.nodes.get(vp.asn)
        if node is not None and node.location is not None:
            locations[vp.network_id] = node.location
    return locations


def _hop_paths(
    service: AnycastService,
    fleet: AtlasFleet,
    engine: TracerouteEngine,
    before_map: Dict[str, str],
    after_map: Dict[str, str],
    before_when: datetime,
    after_when: datetime,
) -> List[Tuple[Sequence[int], Sequence[int]]]:
    """Traceroute the first few moved VPs before and after the event."""
    moved = sorted(
        vp.network_id
        for vp in fleet.vps
        if before_map.get(vp.network_id) != after_map.get(vp.network_id)
    )[:_TRACE_SAMPLE]
    by_network = {vp.network_id: vp for vp in fleet.vps}
    outcome_before = service.scenario.outcome_at(before_when)
    outcome_after = service.scenario.outcome_at(after_when)
    pairs: List[Tuple[Sequence[int], Sequence[int]]] = []
    for network_id in moved:
        vp = by_network[network_id]
        path_before = outcome_before.path_of(vp.asn)
        path_after = outcome_after.path_of(vp.asn)
        if path_before is None or path_after is None:
            continue
        record_before = engine.trace(path_before, _TRACE_DESTINATION)
        record_after = engine.trace(path_after, _TRACE_DESTINATION)
        pairs.append((record_before.as_path(), record_after.as_path()))
    return pairs


#: Operator events (drains, TE) are scripted but not pre-validated
#: against the routing oracle — a drain of an empty site moves nobody
#: and carries no signal. Overscript by this many events per class,
#: then drop unobservable transitions and rebalance.
_OVERSCRIPT = 4

#: A transition is a usable sample only if something actually moved.
_MIN_MOVED_FRACTION = 0.005


def build_dataset(config: DatasetConfig) -> TransitionDataset:
    """Generate a study with ``config`` and featurize its labeled events."""
    per_class = config.events_per_class
    # Third-party events are visibility-validated inside the generator
    # (placement retries until the catchment shift clears
    # ``min_visible_shift``), so only the operator classes need the
    # overscript margin.
    scripted = per_class + _OVERSCRIPT
    study = groundtruth.generate(
        seed=config.seed,
        num_vps=config.num_vps,
        days=config.days,
        cadence=timedelta(hours=6),  # the dataset probes instants directly
        num_drains=scripted,
        num_te=scripted,
        num_internal=2,
        num_coinciding=0,
        num_standalone=per_class,
        extra_log_entries=0,
        loss_probability=config.loss_probability,
        min_visible_shift=config.min_visible_shift,
        num_flaps=per_class,
        third_party_cuts_only=True,
        num_tier1=config.num_tier1,
        num_tier2=config.num_tier2,
        num_stubs=config.num_stubs,
        site_specs=list(_SITE_SPECS),
        te_duration=_TE_DURATION,
    )
    fleet = study.fleet
    service = study.service

    events: List[Tuple[datetime, str]] = []
    for entry in study.log:
        if entry.kind is MaintenanceKind.SITE_DRAIN:
            events.append((entry.time, "drain"))
        elif entry.kind is MaintenanceKind.TRAFFIC_ENGINEERING:
            events.append((entry.time, "traffic-engineering"))
    for when, kind in zip(study.third_party_times, study.third_party_kinds):
        if kind == "cut":
            events.append((when, "cable-cut"))
    for when in study.flap_times:
        events.append((when, "third-party-flap"))
    events.sort()

    rtt_model = RttModel(jitter_ms=0.0, rng=None)
    client_locations = _client_locations(fleet, service)
    site_locations = {
        label: service.location_of(label) for label in service.site_labels()
    }
    engine = TracerouteEngine(
        service.scenario.topology,
        rng=random.Random(config.seed ^ 0x5EED),
        max_ttl=16,
    )

    rows: List[np.ndarray] = []
    labels: List[str] = []
    times: List[str] = []
    sample_transitions: List[Tuple[Dict[str, str], Dict[str, str]]] = []
    networks = tuple(fleet.network_ids())
    catalog = StateCatalog()
    kept = {label: 0 for label in LABELS}
    moved_index = FEATURE_NAMES.index("moved_fraction")
    for when, label in events:
        if kept[label] >= per_class:
            continue
        before_when = when - _BEFORE
        after_when = when + _AFTER
        revert_when = when + _REVERT
        before_map = fleet.measure(before_when)
        after_map = fleet.measure(after_when)
        revert_map = fleet.measure(revert_when)
        before = RoutingVector.from_mapping(before_map, catalog, networks)
        after = RoutingVector.from_mapping(after_map, catalog, networks)
        revert = RoutingVector.from_mapping(revert_map, catalog, networks)
        rtts_before = rtt_model.table(before_map, client_locations, site_locations)
        rtts_after = rtt_model.table(after_map, client_locations, site_locations)
        hop_paths = _hop_paths(
            service, fleet, engine, before_map, after_map, before_when, after_when
        )
        row = featurize(
            before,
            after,
            revert=revert,
            rtts_before=rtts_before,
            rtts_after=rtts_after,
            hop_paths=hop_paths,
        )
        if row[moved_index] < _MIN_MOVED_FRACTION:
            # Scripted but unobservable (e.g. a drain of a site that
            # held no catchment at event time) — no signal, skip it.
            continue
        rows.append(row)
        labels.append(label)
        times.append(when.isoformat())
        kept[label] += 1
        if len(sample_transitions) < _TRACE_SAMPLE:
            sample_transitions.append((dict(before_map), dict(after_map)))

    short = {label: n for label, n in kept.items() if n < per_class}
    if short:
        raise RuntimeError(
            f"not enough observable events after filtering: {short} "
            f"(wanted {per_class} per class; raise the overscript margin)"
        )

    features = (
        np.vstack(rows) if rows else np.empty((0, FEATURE_WIDTH), dtype=np.float64)
    )
    return TransitionDataset(
        features=features,
        labels=tuple(labels),
        times=tuple(times),
        config=config,
        sample_transitions=sample_transitions,
    )
