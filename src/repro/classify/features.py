"""Fixed-width, byte-deterministic features for one mode transition.

A detected transition (the round pair Fenrir flagged as an event) is
reduced to :data:`FEATURE_WIDTH` floats capturing *what kind* of
routing change happened:

* transition-matrix shape — how much moved, whether whole sites
  vanished or appeared, how concentrated the flows are;
* Φ drop magnitude between the two rounds;
* persistence — similarity against a later "revert" round, the axis
  that separates transient changes (drains, flaps) from permanent ones
  (traffic engineering, cable cuts);
* per-site latency deltas from :mod:`repro.core.latency`;
* traceroute hop-level diff features from :mod:`repro.traceroute`.

Determinism contract: the same inputs produce the exact same bytes
(:func:`feature_bytes`) on every run, interpreter, and pytest worker —
values are pure arithmetic over deterministically ordered inputs and
are rounded to a fixed precision before serialization, so a feature
vector can be hashed, journaled, and compared byte for byte.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.compare import UnknownPolicy, phi
from ..core.latency import compare_latency
from ..core.transition import transition_matrix
from ..core.vector import ERROR, OTHER, UNKNOWN, RoutingVector, StateCatalog

__all__ = [
    "FEATURE_NAMES",
    "FEATURE_WIDTH",
    "feature_bytes",
    "features_digest",
    "featurize",
    "featurize_mappings",
]

#: Column names, fixed order — the model artifact records them and
#: refuses to load against a different schema.
FEATURE_NAMES: Tuple[str, ...] = (
    "phi_drop",
    "moved_fraction",
    "vanished_site_fraction",
    "appeared_site_fraction",
    "emptied_site_fraction",
    "active_sites_before",
    "active_sites_after",
    "top_flow_fraction",
    "flow_entropy",
    "revert_phi",
    "revert_vs_after_phi",
    "reverted_fraction",
    "persisted_fraction",
    "error_fraction_delta",
    "mean_delta_ms",
    "moved_delta_ms",
    "hop_length_delta",
    "hop_jaccard",
    "first_hop_change_fraction",
)

FEATURE_WIDTH: int = len(FEATURE_NAMES)

#: Decimal places kept before hashing/serializing. Wide enough that no
#: real signal is lost, tight enough to absorb last-ulp wobble.
_ROUND_DECIMALS = 9

_SPECIAL_LABELS = frozenset((UNKNOWN, ERROR, OTHER))

HopPath = Sequence[int]
HopPathPair = Tuple[HopPath, HopPath]


def feature_bytes(features: Sequence[float]) -> bytes:
    """Canonical little-endian float64 bytes of a feature vector."""
    values = np.asarray(features, dtype=np.float64)
    if values.shape != (FEATURE_WIDTH,):
        raise ValueError(
            f"expected {FEATURE_WIDTH} features, got shape {values.shape}"
        )
    rounded = np.round(values, _ROUND_DECIMALS) + 0.0  # normalize -0.0
    return rounded.astype("<f8").tobytes()


def features_digest(features: Sequence[float]) -> str:
    """sha256 hex digest of :func:`feature_bytes`."""
    return hashlib.sha256(feature_bytes(features)).hexdigest()


def _site_occupancy(row_sums: Mapping[str, float]) -> set:
    return {
        label
        for label, weight in row_sums.items()
        if weight > 0.0 and label not in _SPECIAL_LABELS
    }


def _flow_shape(flows: Sequence[float], moved: float) -> Tuple[float, float]:
    """(largest-flow fraction, normalized entropy) of off-diagonal flows."""
    if not flows or moved <= 0.0:
        return 0.0, 0.0
    weights = np.asarray(sorted(flows, reverse=True), dtype=np.float64)
    top = float(weights[0] / moved)
    if len(weights) == 1:
        return top, 0.0
    p = weights / weights.sum()
    entropy = float(-(p * np.log(p)).sum() / np.log(len(p)))
    return top, entropy


def _error_fraction(vector: RoutingVector) -> float:
    if len(vector) == 0:
        return 0.0
    code = vector.catalog.lookup(ERROR)
    if code is None:
        return 0.0
    return float(np.mean(vector.codes == code))


def _hop_features(
    hop_paths: Optional[Sequence[HopPathPair]],
) -> Tuple[float, float, float]:
    """(mean length delta, mean AS-set Jaccard, first-transit-hop change)."""
    if not hop_paths:
        return 0.0, 1.0, 0.0
    length_deltas = []
    jaccards = []
    first_hop_changes = []
    for before_path, after_path in hop_paths:
        before_ases = tuple(before_path)
        after_ases = tuple(after_path)
        length_deltas.append(float(len(after_ases) - len(before_ases)))
        union = set(before_ases) | set(after_ases)
        if union:
            shared = set(before_ases) & set(after_ases)
            jaccards.append(len(shared) / len(union))
        else:
            jaccards.append(1.0)
        # The first transit hop is the AS after the probing network
        # itself; a change there is the classic "my provider swapped"
        # signature of a nearby third-party event.
        before_first = before_ases[1] if len(before_ases) > 1 else None
        after_first = after_ases[1] if len(after_ases) > 1 else None
        first_hop_changes.append(1.0 if before_first != after_first else 0.0)
    count = float(len(length_deltas))
    return (
        float(sum(length_deltas) / count),
        float(sum(jaccards) / count),
        float(sum(first_hop_changes) / count),
    )


def featurize(
    before: RoutingVector,
    after: RoutingVector,
    *,
    revert: Optional[RoutingVector] = None,
    rtts_before: Optional[Mapping[str, float]] = None,
    rtts_after: Optional[Mapping[str, float]] = None,
    hop_paths: Optional[Sequence[HopPathPair]] = None,
    weights: Optional[np.ndarray] = None,
    policy: UnknownPolicy = UnknownPolicy.PESSIMISTIC,
) -> np.ndarray:
    """Feature vector for the transition ``before -> after``.

    ``revert`` is a round taken comfortably after the transition (past
    any transient window); without it the persistence features default
    to "the change has held so far" — ``revert_phi = Φ(before, after)``
    and ``revert_vs_after_phi = 1.0`` — which is what a streaming
    classifier knows at event time. Latency tables and traceroute hop
    path pairs are optional; their features are 0/neutral when absent.
    """
    matrix = transition_matrix(before, after, weights)
    total = matrix.total
    moved = matrix.moved()
    moved_fraction = float(moved / total) if total else 0.0
    phi_drop = 1.0 - phi(before, after, weights=weights, policy=policy)

    row_sums = matrix.row_sums()
    column_sums = matrix.column_sums()
    active_before = _site_occupancy(row_sums)
    active_after = _site_occupancy(column_sums)
    vanished = len(active_before - active_after)
    appeared = len(active_after - active_before)
    vanished_fraction = vanished / len(active_before) if active_before else 0.0
    appeared_fraction = appeared / len(active_after) if active_after else 0.0
    # Operator actions (drains, scope changes) *empty* a site — nearly
    # all of its catchment departs — where third-party reroutes peel
    # off a slice and leave the site serving. The max departure
    # fraction over meaningfully populated sites captures that without
    # requiring the site to reach exactly zero (stragglers happen).
    emptied_fraction = 0.0
    for label in active_before:
        population = row_sums[label]
        if population < 2.0:
            continue
        remaining = column_sums.get(label, 0.0)
        emptied_fraction = max(
            emptied_fraction, 1.0 - min(remaining, population) / population
        )

    flows = [weight for _, _, weight in matrix.top_movements(limit=len(before) + 1)]
    top_flow, flow_entropy = _flow_shape(flows, moved)

    moved_mask = before.codes != after.codes
    if revert is not None:
        revert_phi = phi(before, revert, weights=weights, policy=policy)
        revert_vs_after = phi(after, revert, weights=weights, policy=policy)
        # Per-moved-network persistence is crisper than whole-vector
        # similarity when the shift is small: of the networks that
        # moved, how many snapped back vs how many stayed put?
        moved_count = int(moved_mask.sum())
        if moved_count:
            reverted = float(
                ((revert.codes == before.codes) & moved_mask).sum() / moved_count
            )
            persisted = float(
                ((revert.codes == after.codes) & moved_mask).sum() / moved_count
            )
        else:
            reverted, persisted = 0.0, 1.0
    else:
        revert_phi = 1.0 - phi_drop
        revert_vs_after = 1.0
        reverted, persisted = 0.0, 1.0

    error_delta = _error_fraction(after) - _error_fraction(before)

    mean_delta_ms = 0.0
    moved_delta_ms = 0.0
    if rtts_before:
        impact = compare_latency(
            before, after, rtts_before, rtts_after, weights=weights
        )
        # A moved population with no usable RTT on one side (e.g. all
        # landed in err) yields nan means; a feature vector must stay
        # finite and byte-stable, so missing signal reads as 0.
        mean_delta_ms = float(np.nan_to_num(impact["delta_ms"]))
        moved_delta_ms = float(np.nan_to_num(impact["moved_delta_ms"]))

    hop_length_delta, hop_jaccard, first_hop_change = _hop_features(hop_paths)

    values = np.array(
        [
            phi_drop,
            moved_fraction,
            vanished_fraction,
            appeared_fraction,
            emptied_fraction,
            float(len(active_before)),
            float(len(active_after)),
            top_flow,
            flow_entropy,
            revert_phi,
            revert_vs_after,
            reverted,
            persisted,
            error_delta,
            mean_delta_ms,
            moved_delta_ms,
            hop_length_delta,
            hop_jaccard,
            first_hop_change,
        ],
        dtype=np.float64,
    )
    return np.round(values, _ROUND_DECIMALS) + 0.0


def featurize_mappings(
    before: Mapping[str, str],
    after: Mapping[str, str],
    *,
    revert: Optional[Mapping[str, str]] = None,
    rtts_before: Optional[Mapping[str, float]] = None,
    rtts_after: Optional[Mapping[str, float]] = None,
    hop_paths: Optional[Sequence[HopPathPair]] = None,
) -> np.ndarray:
    """Featurize raw ``{network: state}`` rounds (the wire-level shape).

    Vectors are built over the sorted union of network names with a
    fresh catalog, so two calls with equal mappings produce identical
    bytes regardless of dict insertion order.
    """
    networks = tuple(sorted(set(before) | set(after) | set(revert or ())))
    catalog = StateCatalog()
    before_vector = RoutingVector.from_mapping(before, catalog, networks)
    after_vector = RoutingVector.from_mapping(after, catalog, networks)
    revert_vector = (
        RoutingVector.from_mapping(revert, catalog, networks)
        if revert is not None
        else None
    )
    return featurize(
        before_vector,
        after_vector,
        revert=revert_vector,
        rtts_before=rtts_before,
        rtts_after=rtts_after,
        hop_paths=hop_paths,
    )
