"""Hand-rolled decision-forest classifier with a versioned JSON artifact.

No sklearn (the repo's no-deps constraint): training is a small bagged
forest of depth-limited CART trees — Gini splits over midpoint
thresholds, bootstrap resampling from an explicit ``random.Random``
seed — which is plenty for four well-separated classes and keeps the
whole model a plain JSON document.

Determinism contract (mirrors :class:`repro.vps.VPPlan`): training is
a pure function of ``(features, labels, seed, hyperparameters)`` —
ties in the split search break toward the lowest feature index and
threshold, bootstrap draws come only from the seeded rng — so two
training runs produce byte-identical artifacts. Equal models ⇔ equal
``canonical_json()`` bytes, and ``from_document(to_document(m))``
round-trips exactly.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .features import FEATURE_NAMES, feature_bytes

__all__ = [
    "LABELS",
    "MODEL_TYPE",
    "MODEL_VERSION",
    "ClassifierModel",
    "ModelError",
    "dataset_digest",
    "evaluate",
    "macro_f1",
    "train_forest",
]

MODEL_VERSION = 1
MODEL_TYPE = "fenrir-classifier"

#: The label taxonomy, in presentation order (docs/classification.md).
#: Prediction ties break toward the earlier label.
LABELS: Tuple[str, ...] = (
    "drain",
    "traffic-engineering",
    "third-party-flap",
    "cable-cut",
)

#: Strict-improvement epsilon for the split search: a candidate must
#: beat the incumbent by more than this, so float noise cannot flip
#: which of two near-equal splits wins between runs.
_GINI_EPSILON = 1e-12

TreeNode = Dict[str, Any]


class ModelError(ValueError):
    """A classifier document that cannot be trusted."""


def dataset_digest(features: np.ndarray, labels: Sequence[str]) -> str:
    """sha256 over the canonical bytes of a labeled feature matrix."""
    digest = hashlib.sha256()
    for row in np.asarray(features, dtype=np.float64):
        digest.update(feature_bytes(row))
    digest.update("\x00".join(labels).encode("utf-8"))
    return digest.hexdigest()


# -- training -----------------------------------------------------------------


def _gini(counts: Mapping[str, int]) -> float:
    total = sum(counts.values())
    if total == 0:
        return 0.0
    return 1.0 - sum((count / total) ** 2 for count in counts.values())


def _label_counts(labels: Sequence[str], indices: Sequence[int]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for index in indices:
        label = labels[index]
        counts[label] = counts.get(label, 0) + 1
    return counts


def _best_split(
    features: np.ndarray,
    labels: Sequence[str],
    indices: List[int],
    candidate_features: Sequence[int],
    min_leaf: int,
) -> Optional[Tuple[int, float, List[int], List[int]]]:
    """The (feature, threshold, left, right) split minimizing Gini."""
    parent = _gini(_label_counts(labels, indices))
    if parent == 0.0:
        return None
    best: Optional[Tuple[int, float, List[int], List[int]]] = None
    best_score = parent - _GINI_EPSILON
    total = len(indices)
    for feature in sorted(candidate_features):
        column = [(float(features[index, feature]), index) for index in indices]
        column.sort()
        values = sorted({value for value, _ in column})
        for lower, upper in zip(values, values[1:]):
            threshold = (lower + upper) / 2.0
            left = [index for value, index in column if value <= threshold]
            right = [index for value, index in column if value > threshold]
            if len(left) < min_leaf or len(right) < min_leaf:
                continue
            score = (
                len(left) * _gini(_label_counts(labels, left))
                + len(right) * _gini(_label_counts(labels, right))
            ) / total
            if score < best_score - _GINI_EPSILON:
                best_score = score
                best = (feature, threshold, left, right)
    return best


def _grow_tree(
    features: np.ndarray,
    labels: Sequence[str],
    indices: List[int],
    depth: int,
    max_depth: int,
    min_leaf: int,
    feature_count: int,
    features_per_split: int,
    rng: random.Random,
) -> TreeNode:
    counts = _label_counts(labels, indices)
    if depth >= max_depth or len(counts) <= 1 or len(indices) < 2 * min_leaf:
        return {"leaf": dict(sorted(counts.items()))}
    candidates = sorted(rng.sample(range(feature_count), features_per_split))
    split = _best_split(features, labels, indices, candidates, min_leaf)
    if split is None:
        return {"leaf": dict(sorted(counts.items()))}
    feature, threshold, left, right = split
    return {
        "feature": feature,
        "threshold": threshold,
        "left": _grow_tree(
            features, labels, left, depth + 1, max_depth, min_leaf,
            feature_count, features_per_split, rng,
        ),
        "right": _grow_tree(
            features, labels, right, depth + 1, max_depth, min_leaf,
            feature_count, features_per_split, rng,
        ),
    }


def train_forest(
    features: np.ndarray,
    labels: Sequence[str],
    *,
    seed: int,
    num_trees: int = 32,
    max_depth: int = 6,
    min_leaf: int = 1,
    label_order: Sequence[str] = LABELS,
    feature_names: Sequence[str] = FEATURE_NAMES,
    provenance: Optional[Mapping[str, object]] = None,
) -> "ClassifierModel":
    """Train a seeded bagged forest; byte-deterministic in its inputs."""
    matrix = np.asarray(features, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != len(feature_names):
        raise ModelError(
            f"features must be (n, {len(feature_names)}), got {matrix.shape}"
        )
    if matrix.shape[0] != len(labels):
        raise ModelError("features and labels disagree on sample count")
    if matrix.shape[0] == 0:
        raise ModelError("cannot train on an empty dataset")
    unknown = sorted(set(labels) - set(label_order))
    if unknown:
        raise ModelError(f"labels outside the taxonomy: {unknown}")
    if num_trees < 1 or max_depth < 1 or min_leaf < 1:
        raise ModelError("num_trees, max_depth and min_leaf must be >= 1")

    rng = random.Random(seed)
    samples = matrix.shape[0]
    feature_count = matrix.shape[1]
    features_per_split = max(1, int(round(feature_count ** 0.5)))
    trees: List[TreeNode] = []
    for _ in range(num_trees):
        indices = sorted(rng.randrange(samples) for _ in range(samples))
        trees.append(
            _grow_tree(
                matrix, labels, indices, 0, max_depth, min_leaf,
                feature_count, features_per_split, rng,
            )
        )

    document_provenance: Dict[str, object] = {
        "seed": seed,
        "num_trees": num_trees,
        "max_depth": max_depth,
        "min_leaf": min_leaf,
        "samples": samples,
        "dataset_sha256": dataset_digest(matrix, labels),
    }
    if provenance:
        document_provenance.update(provenance)
    return ClassifierModel(
        labels=tuple(label_order),
        feature_names=tuple(feature_names),
        trees=tuple(trees),
        provenance=document_provenance,
    )


# -- the artifact -------------------------------------------------------------


@dataclass(frozen=True)
class ClassifierModel:
    """A trained forest plus everything needed to trust and reuse it."""

    labels: Tuple[str, ...]
    feature_names: Tuple[str, ...]
    trees: Tuple[TreeNode, ...]
    provenance: Mapping[str, object]

    def __post_init__(self) -> None:
        if not self.labels:
            raise ModelError("a classifier needs at least one label")
        if not self.trees:
            raise ModelError("a classifier needs at least one tree")
        for tree in self.trees:
            _check_node(tree, len(self.feature_names), set(self.labels))

    # -- inference ----------------------------------------------------------

    def predict_scores(self, features: Sequence[float]) -> Dict[str, float]:
        """Mean leaf-distribution vote of every tree, per label."""
        values = np.asarray(features, dtype=np.float64)
        if values.shape != (len(self.feature_names),):
            raise ModelError(
                f"expected {len(self.feature_names)} features, "
                f"got shape {values.shape}"
            )
        totals = {label: 0.0 for label in self.labels}
        for tree in self.trees:
            node = tree
            while "leaf" not in node:
                index = int(node["feature"])
                branch = "left" if values[index] <= float(node["threshold"]) else "right"
                node = node[branch]
            counts: Mapping[str, int] = node["leaf"]
            weight = float(sum(counts.values()))
            if weight == 0.0:
                continue
            for label, count in counts.items():
                totals[label] += count / weight
        scale = len(self.trees)
        return {
            label: round(total / scale, 9) for label, total in totals.items()
        }

    def predict(self, features: Sequence[float]) -> Tuple[str, Dict[str, float]]:
        """(label, scores); ties break toward the earlier taxonomy label."""
        scores = self.predict_scores(features)
        best = self.labels[0]
        for label in self.labels[1:]:
            if scores[label] > scores[best]:
                best = label
        return best, scores

    # -- serialization (VPPlan idiom: equal models <=> equal bytes) ---------

    def to_document(self) -> Dict[str, object]:
        return {
            "type": MODEL_TYPE,
            "version": MODEL_VERSION,
            "labels": list(self.labels),
            "feature_names": list(self.feature_names),
            "trees": [_copy_node(tree) for tree in self.trees],
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_document(cls, document: object) -> "ClassifierModel":
        if not isinstance(document, Mapping):
            raise ModelError(f"classifier document must be an object, got {type(document).__name__}")
        if document.get("type") != MODEL_TYPE:
            raise ModelError(f"not a classifier document: type={document.get('type')!r}")
        if document.get("version") != MODEL_VERSION:
            raise ModelError(
                f"unsupported classifier version: {document.get('version')!r} "
                f"(this build reads version {MODEL_VERSION})"
            )
        labels = document.get("labels")
        feature_names = document.get("feature_names")
        trees = document.get("trees")
        provenance = document.get("provenance", {})
        if not isinstance(labels, list) or not all(isinstance(v, str) for v in labels):
            raise ModelError("'labels' must be a list of strings")
        if not isinstance(feature_names, list) or not all(
            isinstance(v, str) for v in feature_names
        ):
            raise ModelError("'feature_names' must be a list of strings")
        if not isinstance(trees, list) or not trees:
            raise ModelError("'trees' must be a non-empty list")
        if not isinstance(provenance, Mapping):
            raise ModelError("'provenance' must be an object")
        return cls(
            labels=tuple(labels),
            feature_names=tuple(feature_names),
            trees=tuple(_copy_node(tree) for tree in trees),
            provenance=dict(provenance),
        )

    def canonical_json(self) -> str:
        """Canonical serialization: equal models produce equal bytes."""
        return (
            json.dumps(self.to_document(), sort_keys=True, separators=(",", ":"))
            + "\n"
        )

    def content_digest(self) -> str:
        """sha256 hex digest of :meth:`canonical_json`."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def save(self, path: Path) -> None:
        path.write_text(self.canonical_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Path) -> "ClassifierModel":
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ModelError(f"{path} is not valid JSON: {exc}") from exc
        return cls.from_document(document)

    def summary(self) -> Dict[str, object]:
        """The compact description the serve tier reports for a monitor."""
        return {
            "version": MODEL_VERSION,
            "labels": list(self.labels),
            "trees": len(self.trees),
            "features": len(self.feature_names),
            "digest": self.content_digest(),
            "provenance": dict(self.provenance),
        }


def _copy_node(node: object) -> TreeNode:
    """Deep-copy a tree node document with shape normalization."""
    if not isinstance(node, Mapping):
        raise ModelError(f"tree node must be an object, got {type(node).__name__}")
    if "leaf" in node:
        leaf = node["leaf"]
        if not isinstance(leaf, Mapping):
            raise ModelError("'leaf' must be a label->count object")
        return {
            "leaf": {
                str(label): int(count) for label, count in sorted(leaf.items())
            }
        }
    return {
        "feature": int(node["feature"]) if "feature" in node else -1,
        "threshold": float(node["threshold"]) if "threshold" in node else 0.0,
        "left": _copy_node(node.get("left")),
        "right": _copy_node(node.get("right")),
    }


def _check_node(node: object, feature_count: int, labels: set) -> None:
    if not isinstance(node, Mapping):
        raise ModelError(f"tree node must be an object, got {type(node).__name__}")
    if "leaf" in node:
        leaf = node["leaf"]
        if not isinstance(leaf, Mapping) or not leaf:
            raise ModelError("'leaf' must be a non-empty label->count object")
        for label, count in leaf.items():
            if label not in labels:
                raise ModelError(f"leaf label outside the taxonomy: {label!r}")
            if not isinstance(count, int) or isinstance(count, bool) or count < 0:
                raise ModelError(f"leaf count for {label!r} must be a non-negative int")
        return
    feature = node.get("feature")
    threshold = node.get("threshold")
    if not isinstance(feature, int) or isinstance(feature, bool):
        raise ModelError("split node needs an integer 'feature'")
    if not 0 <= feature < feature_count:
        raise ModelError(f"split feature {feature} out of range 0..{feature_count - 1}")
    if not isinstance(threshold, (int, float)) or isinstance(threshold, bool):
        raise ModelError("split node needs a numeric 'threshold'")
    _check_node(node.get("left"), feature_count, labels)
    _check_node(node.get("right"), feature_count, labels)


# -- evaluation ---------------------------------------------------------------


def macro_f1(
    truths: Sequence[str],
    predictions: Sequence[str],
    labels: Sequence[str] = LABELS,
) -> float:
    """Unweighted mean per-label F1 over the full taxonomy."""
    report = evaluate_predictions(truths, predictions, labels)
    return float(report["macro_f1"])


def evaluate_predictions(
    truths: Sequence[str],
    predictions: Sequence[str],
    labels: Sequence[str] = LABELS,
) -> Dict[str, object]:
    """Per-label precision/recall/F1, confusion matrix and macro-F1."""
    if len(truths) != len(predictions):
        raise ModelError("truths and predictions disagree on sample count")
    confusion: Dict[str, Dict[str, int]] = {
        truth: {predicted: 0 for predicted in labels} for truth in labels
    }
    for truth, predicted in zip(truths, predictions):
        confusion.setdefault(truth, {})[predicted] = (
            confusion.setdefault(truth, {}).get(predicted, 0) + 1
        )
    per_label: Dict[str, Dict[str, float]] = {}
    f1_sum = 0.0
    for label in labels:
        true_positive = confusion.get(label, {}).get(label, 0)
        support = sum(confusion.get(label, {}).values())
        predicted_positive = sum(
            row.get(label, 0) for row in confusion.values()
        )
        precision = true_positive / predicted_positive if predicted_positive else 0.0
        recall = true_positive / support if support else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        per_label[label] = {
            "precision": round(precision, 6),
            "recall": round(recall, 6),
            "f1": round(f1, 6),
            "support": float(support),
        }
        f1_sum += f1
    correct = sum(1 for t, p in zip(truths, predictions) if t == p)
    return {
        "macro_f1": round(f1_sum / len(labels), 6) if labels else 0.0,
        "accuracy": round(correct / len(truths), 6) if truths else 0.0,
        "per_label": per_label,
        "confusion": confusion,
    }


def evaluate(
    model: ClassifierModel,
    features: np.ndarray,
    labels: Sequence[str],
) -> Dict[str, object]:
    """Run ``model`` over a labeled feature matrix and score it."""
    matrix = np.asarray(features, dtype=np.float64)
    predictions = [model.predict(row)[0] for row in matrix]
    return evaluate_predictions(labels, predictions, model.labels)
