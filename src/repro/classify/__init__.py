"""Route-change cause classification (TRACE-style, arxiv 2604.02361).

Fenrir detects *that* a mode transition happened; this package labels
*why*: ``drain``, ``traffic-engineering``, ``third-party-flap`` or
``cable-cut``. Three pieces:

* :mod:`.features` — a fixed-width, byte-deterministic feature vector
  per transition;
* :mod:`.model` — a dependency-free seeded decision forest with a
  versioned, exactly-round-tripping JSON artifact;
* :mod:`.dataset` — labeled transitions replayed from the
  ground-truth study generator, for training and evaluation.

The serve tier exposes the model behind the ``classify`` wire command
(docs/serving.md) and can stream labeled events on mode transitions;
``repro classify train/eval/show`` covers the offline workflow
(docs/classification.md).
"""

from .dataset import (
    FULL_EVAL,
    FULL_TRAIN,
    QUICK_EVAL,
    QUICK_TRAIN,
    DatasetConfig,
    TransitionDataset,
    build_dataset,
)
from .features import (
    FEATURE_NAMES,
    FEATURE_WIDTH,
    feature_bytes,
    features_digest,
    featurize,
    featurize_mappings,
)
from .model import (
    LABELS,
    MODEL_TYPE,
    MODEL_VERSION,
    ClassifierModel,
    ModelError,
    dataset_digest,
    evaluate,
    evaluate_predictions,
    macro_f1,
    train_forest,
)

__all__ = [
    "FULL_EVAL",
    "FULL_TRAIN",
    "QUICK_EVAL",
    "QUICK_TRAIN",
    "DatasetConfig",
    "TransitionDataset",
    "build_dataset",
    "FEATURE_NAMES",
    "FEATURE_WIDTH",
    "feature_bytes",
    "features_digest",
    "featurize",
    "featurize_mappings",
    "LABELS",
    "MODEL_TYPE",
    "MODEL_VERSION",
    "ClassifierModel",
    "ModelError",
    "dataset_digest",
    "evaluate",
    "evaluate_predictions",
    "macro_f1",
    "train_forest",
]
