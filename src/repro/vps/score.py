"""Greedy submodular selection of the most valuable vantage points.

The objective scores a candidate set ``K`` of VPs by three monotone
submodular terms over the study's T×N code matrix:

* **representation** (facility location): every VP is "served" by its
  most-similar kept VP, where similarity is the exact count of rounds
  in which the two columns agree. Adding a redundant neighbour of an
  already-kept VP gains nothing — this is the redundancy penalty.
* **detection power**: the set of *active transition steps* (rounds
  where at least ``change_threshold`` of all VPs moved between two
  known catchments) that some kept VP itself moved on. A kept set
  covering every active step sees every detectable mode transition.
* **catchment coverage**: the fraction of distinct catchment states
  (site labels — the special unknown/err/other codes are excluded)
  observed by at least one kept VP.

All three terms are monotone and submodular, so greedy selection
under a cardinality budget carries the classic (1 − 1/e) guarantee.

Determinism (the property the CLI tests pin down): agreement counts
are computed as per-state-code one-hot float64 matmuls. Every product
is 0/1 and every sum is an integer ≤ T ≪ 2⁵³, so each count is
*exact* in float64 — tiling and accumulation order cannot change a
single bit, which makes the emitted plan byte-identical across runs
and across ``--jobs`` settings. Ties in the greedy argmax break to
the lowest VP index.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

from ..core.series import VectorSeries
from ..core.vector import OTHER_CODE
from ..obs import get_registry, span
from .plan import PlanError, VPPlan, series_digest

__all__ = ["SelectionConfig", "agreement_counts", "select_vps"]


@dataclass(frozen=True)
class SelectionConfig:
    """Knobs for :func:`select_vps`.

    Exactly one of ``budget`` (absolute kept count) and ``fraction``
    (kept share of all VPs) must be set. The term weights default to
    representation and detection on equal footing with coverage as a
    tie-breaking nudge; ``change_threshold`` matches the Tier-1
    detection threshold so "active steps" are exactly the steps the
    detector could fire on.
    """

    budget: Optional[int] = None
    fraction: Optional[float] = None
    alpha: float = 1.0  # representation (redundancy penalty)
    beta: float = 1.0  # transition detection power
    gamma: float = 0.25  # catchment-state coverage
    change_threshold: float = 0.02
    tile_size: int = 128
    jobs: int = 1

    def __post_init__(self) -> None:
        if (self.budget is None) == (self.fraction is None):
            raise PlanError("set exactly one of budget and fraction")
        if self.budget is not None and self.budget < 1:
            raise PlanError(f"budget must be >= 1, got {self.budget}")
        if self.fraction is not None and not 0 < self.fraction <= 1:
            raise PlanError(f"fraction must be in (0, 1], got {self.fraction}")
        if min(self.alpha, self.beta, self.gamma) < 0:
            raise PlanError("term weights must be non-negative")
        if self.tile_size < 1:
            raise PlanError(f"tile_size must be >= 1, got {self.tile_size}")
        if self.jobs < 1:
            raise PlanError(f"jobs must be >= 1, got {self.jobs}")

    def resolve_budget(self, total_networks: int) -> int:
        if self.budget is not None:
            return min(self.budget, total_networks)
        assert self.fraction is not None
        return max(1, int(total_networks * self.fraction))


def _tile_block(
    onehot: np.ndarray, bounds: Tuple[int, int]
) -> Tuple[int, np.ndarray]:
    start, stop = bounds
    return start, onehot[:, start:stop].T @ onehot


def agreement_counts(
    matrix: np.ndarray, tile_size: int = 128, jobs: int = 1
) -> np.ndarray:
    """N×N matrix of exact per-pair column-agreement round counts.

    Computed per state code as one-hot matmuls accumulated over codes:
    ``sum_code (M == code)ᵀ(M == code)``. All entries are integers
    ≤ T represented exactly in float64, so the result is bitwise
    independent of ``tile_size`` and ``jobs``. Tiles are fixed-size
    row blocks of the output; ``jobs > 1`` computes them on a thread
    pool (the matmul releases the GIL).
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.int32)
    rounds, networks = matrix.shape
    out = np.zeros((networks, networks), dtype=np.float64)
    if rounds == 0 or networks == 0:
        return out
    tiles = [
        (start, min(start + tile_size, networks))
        for start in range(0, networks, tile_size)
    ]
    for code in np.unique(matrix):
        onehot = (matrix == code).astype(np.float64)
        compute = partial(_tile_block, onehot)
        if jobs > 1 and len(tiles) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                blocks = list(pool.map(compute, tiles))
        else:
            blocks = [compute(bounds) for bounds in tiles]
        for start, block in blocks:
            out[start : start + block.shape[0]] += block
    return out


def _moved(matrix: np.ndarray) -> np.ndarray:
    """(T−1)×N mask: the VP moved between two *known* catchments.

    Transitions into or out of the special states (unknown/err/other,
    codes ≤ 2) are measurement noise — packet loss, probe errors — not
    routing signal, so they never count as movement.
    """
    before, after = matrix[:-1], matrix[1:]
    return (before != after) & (before > OTHER_CODE) & (after > OTHER_CODE)


def select_vps(series: VectorSeries, config: SelectionConfig) -> VPPlan:
    """Greedily select a budgeted VP subset and its weight rescaling.

    Returns a :class:`VPPlan` whose per-VP weight is the number of
    original VPs represented by that kept VP (assignment by highest
    agreement count, ties to the earliest-kept VP), so the weights sum
    to the original VP count.
    """
    matrix = series.matrix
    rounds, total = matrix.shape
    if total == 0:
        raise PlanError("cannot select from a series with no networks")
    if rounds == 0:
        raise PlanError("cannot select from an empty series")
    budget = config.resolve_budget(total)
    started = perf_counter()
    registry = get_registry()
    with span("vps.select", networks=total, rounds=rounds, budget=budget):
        sim = agreement_counts(
            matrix, tile_size=config.tile_size, jobs=config.jobs
        )

        moved = _moved(matrix)
        if moved.size:
            active_steps = (
                moved.sum(axis=1) / total >= config.change_threshold
            )
            moved_active = moved[active_steps]  # S×N
        else:
            moved_active = np.zeros((0, total), dtype=bool)
        num_active = moved_active.shape[0]

        site_codes = np.asarray(
            sorted(int(code) for code in np.unique(matrix) if code > OTHER_CODE),
            dtype=np.int32,
        )
        presence = (
            np.stack([(matrix == code).any(axis=0) for code in site_codes])
            if site_codes.size
            else np.zeros((0, total), dtype=bool)
        )  # |sites|×N
        num_states = presence.shape[0]

        # Greedy maximization. `best` is each VP's agreement with its
        # closest kept VP; `step_covered`/`state_covered` track the
        # detection and coverage terms. All gains are computed from
        # exact integer counts, so the argmax (first-max tie-break) is
        # bit-deterministic.
        best = np.zeros(total, dtype=np.float64)
        step_covered = np.zeros(num_active, dtype=bool)
        state_covered = np.zeros(num_states, dtype=bool)
        kept: List[int] = []
        kept_mask = np.zeros(total, dtype=bool)
        rep_scale = config.alpha / float(rounds * total)
        det_scale = config.beta / float(max(1, num_active))
        cov_scale = config.gamma / float(max(1, num_states))
        selection: List[dict] = []
        for _ in range(budget):
            rep_gain = np.maximum(sim - best[np.newaxis, :], 0.0).sum(axis=1)
            det_gain = (
                moved_active[~step_covered].sum(axis=0, dtype=np.float64)
                if num_active
                else 0.0
            )
            cov_gain = (
                presence[~state_covered].sum(axis=0, dtype=np.float64)
                if num_states
                else 0.0
            )
            score = rep_gain * rep_scale + det_gain * det_scale + cov_gain * cov_scale
            score[kept_mask] = -np.inf
            choice = int(np.argmax(score))
            kept.append(choice)
            kept_mask[choice] = True
            best = np.maximum(best, sim[choice])
            if num_active:
                step_covered |= moved_active[:, choice]
            if num_states:
                state_covered |= presence[:, choice]
            selection.append(
                {"vp": series.networks[choice], "gain": float(score[choice])}
            )

        # Weight rescaling: assign every VP to its most-agreeing kept
        # representative (ties to the earliest-kept), weight = count.
        kept_order = np.asarray(kept, dtype=np.int64)
        assignment = np.argmax(sim[kept_order, :], axis=0)  # first max wins
        # A kept VP always represents itself, even when another kept VP
        # has an identical column (the argmax tie would otherwise hand
        # its self-assignment to the earlier pick). This keeps every
        # weight >= 1 and the weight total exactly the original VP
        # count.
        assignment[kept_order] = np.arange(len(kept_order))
        counts = np.bincount(assignment, minlength=len(kept_order))
        weights = {
            series.networks[vp_index]: float(counts[position])
            for position, vp_index in enumerate(kept_order)
        }

        plan = VPPlan(
            kept=tuple(series.networks[index] for index in kept),
            weights=weights,
            total_networks=total,
            provenance={
                "series_sha256": series_digest(series),
                "rounds": rounds,
                "active_steps": num_active,
                "objective": {
                    "alpha": config.alpha,
                    "beta": config.beta,
                    "gamma": config.gamma,
                    "change_threshold": config.change_threshold,
                },
                "selection": selection,
            },
        )
    registry.counter(
        "vps_selections_total", help="Completed VP budget selections"
    ).inc()
    registry.histogram(
        "vps_select_seconds", help="Wall time of greedy VP selection"
    ).observe(perf_counter() - started)
    registry.gauge(
        "vps_kept_networks", help="Kept VP count of the latest selection"
    ).set(float(len(kept)))
    return plan
