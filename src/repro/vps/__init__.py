"""``repro.vps``: most-valuable-VP selection and ingest deduplication.

Fenrir's inputs are massively redundant in two independent ways:

* **across vantage points** — most VPs sit in the same catchment as a
  neighbour and observe the same state at every round; and
* **across time** — routing results recur, so consecutive rounds
  usually repeat the previous round's vector byte for byte.

This package attacks the first kind ("Measuring Internet Routing from
the Most Valuable Points", arXiv 2405.13172): :func:`select_vps`
greedily picks a budgeted subset of VPs maximizing a monotone
submodular objective (catchment representation, transition-step
detection power, catchment-state coverage) and emits a deterministic
:class:`VPPlan` artifact — kept VPs plus per-VP weight rescaling —
that the offline pipeline and the serve tier both consume. The second
kind is handled server-side by ``DurableMonitor``'s dedup mode (see
``repro.serve.monitor``), which journals recurring identical rounds
as compact reference records.

See ``docs/vps.md`` for the full story, ``repro vps select`` for the
CLI entry point, and ``benchmarks/bench_vps.py`` for the end-to-end
proof that the Table 4 confusion matrix and the mode timelines survive
at ≤20% of the original VP/ingest volume.
"""

from .plan import PLAN_VERSION, PlanError, VPPlan, series_digest
from .score import SelectionConfig, agreement_counts, select_vps

__all__ = [
    "PLAN_VERSION",
    "PlanError",
    "VPPlan",
    "series_digest",
    "SelectionConfig",
    "agreement_counts",
    "select_vps",
]
