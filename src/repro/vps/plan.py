"""The :class:`VPPlan` artifact: which VPs to keep, at what weight.

A plan is the contract between the selection stage (``repro vps
select``) and everything downstream: the offline pipeline projects a
series onto the kept VPs and feeds the rescaled weights into
Φ/detection, and the serve tier creates monitors directly from a plan
(``vps`` wire command). Plans serialize as *canonical JSON* — sorted
keys, no whitespace, trailing newline — so a byte-level comparison is
a semantic comparison; the determinism tests rely on this.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence, Tuple

import numpy as np

from ..core.series import VectorSeries

__all__ = ["PLAN_VERSION", "PLAN_TYPE", "PlanError", "VPPlan", "series_digest"]

PLAN_VERSION = 1
PLAN_TYPE = "fenrir-vpplan"


class PlanError(ValueError):
    """Raised for malformed or inapplicable plans."""


def series_digest(series: VectorSeries) -> str:
    """Content hash of a series: networks, times, and the code matrix.

    Stored in plan provenance so a plan can be traced to the exact
    measurement window it was selected from.
    """
    digest = hashlib.sha256()
    digest.update("\x00".join(series.networks).encode("utf-8"))
    digest.update(b"\x01")
    digest.update(
        "\x00".join(time.isoformat() for time in series.times).encode("utf-8")
    )
    digest.update(b"\x01")
    digest.update(np.ascontiguousarray(series.matrix, dtype=np.int32).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class VPPlan:
    """A budgeted VP subset plus per-VP weight rescaling.

    ``weights[vp]`` is the number of original VPs the kept VP
    represents (itself included), so the weights sum to
    ``total_networks`` and weighted aggregates over the kept subset
    approximate unweighted aggregates over the full set.
    """

    kept: Tuple[str, ...]
    weights: Mapping[str, float]
    total_networks: int
    provenance: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kept:
            raise PlanError("a plan must keep at least one VP")
        if len(set(self.kept)) != len(self.kept):
            raise PlanError("kept VPs must be unique")
        if set(self.weights) != set(self.kept):
            raise PlanError("weights must cover exactly the kept VPs")
        for name, weight in self.weights.items():
            if not isinstance(weight, (int, float)) or isinstance(weight, bool):
                raise PlanError(f"weight for {name!r} must be a number")
            if not np.isfinite(weight) or weight <= 0:
                raise PlanError(f"weight for {name!r} must be positive and finite")
        if self.total_networks < len(self.kept):
            raise PlanError("total_networks cannot be below the kept count")

    # -- derived -------------------------------------------------------------

    @property
    def budget(self) -> int:
        return len(self.kept)

    @property
    def volume_fraction(self) -> float:
        """Kept fraction of the original VP volume (the ≤0.20 target)."""
        return len(self.kept) / self.total_networks

    # -- serialization -------------------------------------------------------

    def to_document(self) -> dict:
        return {
            "type": PLAN_TYPE,
            "version": PLAN_VERSION,
            "kept": list(self.kept),
            "weights": {name: float(w) for name, w in self.weights.items()},
            "total_networks": self.total_networks,
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "VPPlan":
        if not isinstance(document, Mapping):
            raise PlanError(f"plan must be an object, got {type(document).__name__}")
        if document.get("type") != PLAN_TYPE:
            raise PlanError(f"not a VP plan: type={document.get('type')!r}")
        if document.get("version") != PLAN_VERSION:
            raise PlanError(f"unsupported plan version: {document.get('version')!r}")
        kept = document.get("kept")
        weights = document.get("weights")
        total = document.get("total_networks")
        if not isinstance(kept, Sequence) or isinstance(kept, str):
            raise PlanError("plan 'kept' must be a list of VP names")
        if not all(isinstance(name, str) for name in kept):
            raise PlanError("plan 'kept' must contain only strings")
        if not isinstance(weights, Mapping):
            raise PlanError("plan 'weights' must be an object")
        if not isinstance(total, int) or isinstance(total, bool):
            raise PlanError("plan 'total_networks' must be an integer")
        provenance = document.get("provenance", {})
        if not isinstance(provenance, Mapping):
            raise PlanError("plan 'provenance' must be an object")
        return cls(
            kept=tuple(kept),
            weights={str(k): v for k, v in weights.items()},
            total_networks=total,
            provenance=dict(provenance),
        )

    def canonical_json(self) -> str:
        """Deterministic byte encoding: equal plans ⇔ equal bytes."""
        return (
            json.dumps(self.to_document(), sort_keys=True, separators=(",", ":"))
            + "\n"
        )

    def save(self, path: Path | str) -> None:
        Path(path).write_text(self.canonical_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Path | str) -> "VPPlan":
        try:
            document = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise PlanError(f"unreadable plan file {path}: {exc}") from exc
        return cls.from_document(document)

    # -- application ---------------------------------------------------------

    def weight_array(self, networks: Sequence[str]) -> np.ndarray:
        """Plan weights aligned to ``networks`` (all must be kept)."""
        missing = [name for name in networks if name not in self.weights]
        if missing:
            raise PlanError(f"networks not in plan: {missing[:5]!r}")
        return np.asarray(
            [self.weights[name] for name in networks], dtype=np.float64
        )

    def apply(self, series: VectorSeries) -> tuple[VectorSeries, np.ndarray]:
        """Project ``series`` onto the kept VPs, with aligned weights.

        The kept VPs must all exist in the series; the reduced series
        preserves the series' network order (``select_networks``
        semantics), and the returned weights align with it.
        """
        missing = [name for name in self.kept if name not in series.networks]
        if missing:
            raise PlanError(
                f"plan VPs missing from series: {missing[:5]!r}"
                + ("..." if len(missing) > 5 else "")
            )
        reduced = series.select_networks(list(self.kept))
        return reduced, self.weight_array(reduced.networks)
