"""Validate Fenrir against operator ground truth (the paper's Table 4).

Generates a scaled version of the B-Root/Atlas validation scenario —
a maintenance log of drains, TE changes and internal-only work, plus
unlogged third-party transit changes — and reports the confusion
matrix, highlighting the detections that match nothing in the log:
Fenrir's new visibility into third-party routing changes.

Run:  python examples/groundtruth_validation.py
"""

from __future__ import annotations

from repro.core import detect_events, group_entries, validate_events
from repro.datasets import groundtruth


def main() -> None:
    print("generating the validation scenario (this takes a few seconds)...")
    study = groundtruth.generate(
        num_vps=350,
        days=60,
        num_drains=9,
        num_te=1,
        num_internal=18,
        num_coinciding=4,
        num_standalone=5,
        extra_log_entries=21,
    )

    events = detect_events(study.series, threshold=0.02, merge_gap=3)
    groups = group_entries(study.log)
    report = validate_events(events, groups)

    external = sum(1 for group in groups if group.external)
    print()
    print(f"operator log: {len(study.log)} raw entries -> {len(groups)} grouped events")
    print(f"  external (drains/TE): {external}")
    print(f"  internal only:        {len(groups) - external}")
    print(f"Fenrir detections:      {len(events)}")
    print()
    print("confusion matrix (paper Table 4):")
    print(f"  TP  (external, detected)      = {report.true_positive}")
    print(f"  FN  (external, missed)        = {report.false_negative}")
    print(f"  TN  (internal, quiet)         = {report.true_negative}")
    print(f"  FP? (internal, detected)      = {report.false_positive}")
    print(f"  (*) detections matching nothing = {report.unmatched_detections}")
    print()
    print(f"recall    = {report.recall:.2f}")
    print(f"precision = {report.precision:.2f}")
    print(f"accuracy  = {report.accuracy:.2f}")
    print()
    print("candidate third-party changes (not in the operator log):")
    for event in report.extra_events:
        nearest = min(
            (abs((t - event.start).total_seconds()), t)
            for t in study.third_party_times
        )
        confirmed = "scripted third-party change" if nearest[0] < 3600 else "unexplained"
        print(
            f"  {event.start:%Y-%m-%d %H:%M} max step change "
            f"{event.max_change:.2f} -> {confirmed}"
        )


if __name__ == "__main__":
    main()
