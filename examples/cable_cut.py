"""The Baltic cable-cut story, end to end.

The paper opens with a question no operator could answer in real time:
when submarine cables in the Baltic were cut in November 2024, which
networks' routing changed, by how much, and what did it cost in
latency? The answers came from one-off manual analysis; Fenrir's point
is that they should fall out of routine monitoring.

This example replays the scenario: a country reached through two
submarine-cable transits loses one. Fenrir's country-ingress vectors
flag the event the day it happens; the transit-diversity index shows
the country now has a single point of failure; and the per-network
path-RTT join quantifies the detour.

Run:  python examples/cable_cut.py
"""

from __future__ import annotations

from collections import Counter
from datetime import timedelta

import numpy as np

from repro.controlplane.country import country_crossings, transit_diversity
from repro.core import Fenrir, explain_event
from repro.datasets import baltic
from repro.latency.model import path_rtt_ms


def main() -> None:
    print("generating the cable-cut scenario...")
    study = baltic.generate()
    report = Fenrir().run(study.series)

    print()
    print("== country ingress modes ==")
    print(report.mode_timeline())

    print()
    print("== the event, as the country's NOC would see it ==")
    event = report.events[0]
    explanation = explain_event(report, event)
    print(" ", explanation.headline())

    before_when = baltic.CABLE_CUT - timedelta(days=3)
    after_when = baltic.CABLE_CUT + timedelta(days=3)
    for label, when in (("before", before_when), ("after", after_when)):
        crossings = country_crossings(
            study.collector.paths_at(when), study.country_ases
        )
        shares = Counter(
            baltic.AS_NAMES.get(c.outside_asn, f"AS{c.outside_asn}")
            for c in crossings
        )
        diversity = transit_diversity(crossings)
        print(
            f"  {label:>6}: transits {dict(shares)}  "
            f"diversity index {diversity:.2f}"
        )

    print()
    print("== the latency detour ==")
    paths_before = study.collector.paths_at(before_when)
    paths_after = study.collector.paths_at(after_when)
    moved = [
        asn for asn, path in paths_before.items() if baltic.CABLE_WEST in path
    ]
    deltas = [
        path_rtt_ms(study.topology, paths_after[asn])
        - path_rtt_ms(study.topology, paths_before[asn])
        for asn in moved
    ]
    print(
        f"  {len(moved)} networks rerouted; path-RTT change "
        f"median +{np.median(deltas):.0f} ms, p90 +{np.percentile(deltas, 90):.0f} ms"
    )
    print(
        "  (the paper's motivating observation: latency shifts in European\n"
        "   networks, caused several hops away, visible without any manual\n"
        "   analysis)"
    )


if __name__ == "__main__":
    main()
