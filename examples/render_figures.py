"""Render every paper figure as an SVG file.

Generates scaled versions of the evaluation scenarios and writes one
self-contained SVG per figure into ``figures/`` — the vector-graphic
counterpart of the text renderings the benchmarks print.

Run:  python examples/render_figures.py [output-dir]
"""

from __future__ import annotations

import sys
from datetime import datetime, timedelta
from pathlib import Path

from repro.core import Fenrir, latency_timeseries
from repro.core.viz import sankey_flows
from repro.datasets import broot, groot, usc, wikipedia
from repro.latency.model import RttModel
from repro.viz_svg import heatmap_svg, latency_svg, sankey_svg, stackplot_svg


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def save(svg, name: str) -> None:
        path = out / name
        svg.save(path)
        written.append(path)
        print(f"  wrote {path}")

    print("Figure 1: G-Root catchment sizes...")
    groot_study = groot.generate(num_vps=800, coarse_interval=timedelta(hours=4))
    aggregates = groot_study.series.aggregate_over_time()
    save(
        stackplot_svg(aggregates, groot_study.series.times,
                      title="Fig 1: G-Root catchments (VP counts)"),
        "fig1_groot_stackplot.svg",
    )

    print("Figures 2/7/8: USC enterprise...")
    usc_study = usc.generate(num_blocks=700, cadence=timedelta(days=4))
    usc_report = Fenrir().run(usc_study.series)
    save(
        heatmap_svg(usc_report.similarity, usc_report.cleaned.times, cell=5,
                    title="Fig 2b: USC hop-3 similarity"),
        "fig2b_usc_heatmap.svg",
    )
    save(
        stackplot_svg(usc_report.cleaned.aggregate_over_time(),
                      usc_report.cleaned.times,
                      title="Fig 2a: USC hop-3 catchments"),
        "fig2a_usc_stackplot.svg",
    )
    for tag, when, figure in (
        ("before", datetime(2024, 10, 1), "fig7"),
        ("after", datetime(2025, 2, 15), "fig8"),
    ):
        records = usc_study.enterprise.sweep(when)
        paths = [
            [usc_study.enterprise.name_of(asn) or "?" for asn in r.as_path()]
            for r in records.values()
        ]
        save(
            sankey_svg(sankey_flows(paths, max_hops=4),
                       title=f"{figure}: USC flows {tag} ({when:%Y-%m-%d})"),
            f"{figure}_usc_sankey_{tag}.svg",
        )

    print("Figures 3/4: B-Root...")
    broot_study = broot.generate(num_blocks=1200)
    broot_report = Fenrir().run(broot_study.series)
    save(
        heatmap_svg(broot_report.similarity, broot_report.cleaned.times, cell=3,
                    title="Fig 3b: B-Root similarity, 2019-2024"),
        "fig3b_broot_heatmap.svg",
    )
    save(
        stackplot_svg(broot_report.cleaned.aggregate_over_time(),
                      broot_report.cleaned.times,
                      title="Fig 3a: B-Root catchments"),
        "fig3a_broot_stackplot.svg",
    )
    from repro.viz_svg import timeline_svg

    save(
        timeline_svg(broot_report.modes, broot_report.events,
                     title="B-Root routing modes (i)..(vi)"),
        "fig3_broot_mode_timeline.svg",
    )
    window = broot_study.series.between(datetime(2022, 1, 1), datetime(2024, 1, 1))
    model = RttModel(jitter_ms=0)

    def rtts_at(index: int):
        assignment = broot_study.true_assignment(window.times[index])
        return model.table(assignment, broot_study.block_locations,
                           broot_study.site_locations)

    latency = latency_timeseries(window, rtts_at, q=90)
    save(
        latency_svg(latency, window.times,
                    title="Fig 4: B-Root p90 latency per catchment"),
        "fig4_broot_latency.svg",
    )

    print("Figure 6: Wikipedia...")
    wiki_study = wikipedia.generate(num_prefixes=900)
    wiki_report = Fenrir().run(wiki_study.series)
    save(
        heatmap_svg(wiki_report.similarity, wiki_report.cleaned.times, cell=8,
                    title="Fig 6b: Wikipedia similarity"),
        "fig6b_wikipedia_heatmap.svg",
    )
    save(
        stackplot_svg(wiki_report.cleaned.aggregate_over_time(),
                      wiki_report.cleaned.times,
                      title="Fig 6a: Wikipedia catchments"),
        "fig6a_wikipedia_stackplot.svg",
    )

    print(f"\n{len(written)} figures in {out}/")


if __name__ == "__main__":
    main()
