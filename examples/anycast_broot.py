"""B-Root anycast study: five years of modes, transitions and latency.

Regenerates a scaled version of the paper's Figure 3 scenario — the
B-Root anycast service measured with a Verfploeter-style mapper — then
answers the three operator questions the paper poses:

1. How quickly do catchments change, and when?
2. Do routing results re-occur later? (mode v vs mode i)
3. What did each change do to latency? (the ARI shutdown)

Run:  python examples/anycast_broot.py
"""

from __future__ import annotations

from datetime import datetime, timedelta

from repro.core import Fenrir, transition_matrix
from repro.core.latency import percentile_by_catchment
from repro.core.vector import RoutingVector, StateCatalog
from repro.core.viz import render_transition_table
from repro.datasets import broot
from repro.latency.model import RttModel


def main() -> None:
    print("generating the B-Root scenario (five years, weekly rounds)...")
    study = broot.generate(num_blocks=1500)
    report = Fenrir().run(study.series)

    print()
    print("== mode timeline (paper Figure 3b) ==")
    print(report.mode_timeline())

    print()
    print("== does routing re-occur? ==")
    modes = report.modes
    v_mode = modes.mode_at(study.series.index_at(datetime(2024, 2, 1))).mode_id
    prior = modes.closest_prior_mode(v_mode)
    assert prior is not None
    print(
        f"mode {v_mode} (2023-07 onward) most resembles prior mode {prior[0]} "
        f"(mean Φ {prior[1]:.2f}) — the original deployment recurs."
    )

    print()
    print("== the ARI shutdown (paper Figure 4) ==")
    model = RttModel(jitter_ms=0)
    catalog = StateCatalog()
    for when in (datetime(2023, 2, 1), datetime(2024, 2, 1)):
        assignment = study.true_assignment(when)
        rtts = model.table(assignment, study.block_locations, study.site_locations)
        vector = RoutingVector.from_mapping(assignment, catalog=catalog)
        percentiles = percentile_by_catchment(vector, rtts, q=90)
        row = ", ".join(f"{site}={value:.0f}ms" for site, value in sorted(percentiles.items()))
        print(f"  p90 per catchment on {when:%Y-%m-%d}: {row}")

    print()
    print("== what moved when SIN/IAD/AMS came online (2020-02)? ==")
    before = study.series.index_at(broot.SITE_ADD_DATE - timedelta(days=1))
    after = study.series.index_at(broot.SITE_ADD_DATE + timedelta(days=21))
    table = transition_matrix(report.cleaned[before], report.cleaned[after])
    print(render_transition_table(table, min_total=10))


if __name__ == "__main__":
    main()
