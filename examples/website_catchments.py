"""Top-website catchments: Google's churn vs Wikipedia's stability.

Regenerates scaled versions of the paper's Figures 5 and 6 and
contrasts the two regimes the paper highlights: a hypergiant that
reshuffles clients weekly across thousands of front ends, and a
non-profit with seven geo-mapped sites where the only change is a
scripted site drain.

Run:  python examples/website_catchments.py
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np

from repro.core import Fenrir, similarity_matrix, transition_matrix
from repro.datasets import google, wikipedia


def main() -> None:
    print("generating the Google scenario (EDNS-CS sweeps)...")
    google_study = google.generate(num_prefixes=1200)
    similarity = similarity_matrix(google_study.series)
    era = google.ERA_2013_DAYS
    within = float(np.mean([similarity[era + d, era + d + 1] for d in range(5)]))
    across = float(np.mean([similarity[era + d, era + d + 14] for d in range(5)]))
    eras = float(np.mean([similarity[0, era + 10]]))
    print(f"  Φ within a week : {within:.2f}  (paper ~0.79)")
    print(f"  Φ across weeks  : {across:.2f}  (paper ~0.25)")
    print(f"  Φ 2013 vs 2024  : {eras:.3f} (paper ~0: the fleet fully turned over)")

    print()
    print("generating the Wikipedia scenario (codfw drain)...")
    wiki_study = wikipedia.generate(num_prefixes=1200)
    report = Fenrir().run(wiki_study.series)
    print(report.mode_timeline())

    series = wiki_study.series
    pre = series.index_at(wikipedia.DRAIN_START - timedelta(days=1))
    during = series.index_at(wikipedia.DRAIN_START + timedelta(days=1))
    table = transition_matrix(series[pre], series[during])
    departures = table.departures_from("codfw")
    departures.pop("unknown", None)
    total = sum(departures.values())
    print()
    print("  where codfw's clients went during the drain:")
    for site, count in sorted(departures.items(), key=lambda kv: -kv[1]):
        print(f"    {site:>6}: {count / total:.0%}")

    aggregates = series.aggregate_over_time()
    returned = aggregates["codfw"][-1] / aggregates["codfw"][0]
    print(f"  codfw clients that returned after the drain: {returned:.0%} (paper ~30%)")


if __name__ == "__main__":
    main()
