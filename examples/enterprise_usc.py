"""Multi-homed enterprise study: the 2025-01-16 USC reconfiguration.

Regenerates the paper's Figure 2 scenario: eight months of traceroute
sweeps out of a USC-like enterprise, analysed at hop 3, plus the
Sankey flow views of Figures 7/8 and the per-hop "focus" adjustment
the paper describes (§2.3.2).

Run:  python examples/enterprise_usc.py
"""

from __future__ import annotations

from collections import Counter
from datetime import datetime, timedelta

from repro.core import Fenrir, VectorSeries
from repro.core.vector import StateCatalog
from repro.core.viz import render_sankey, sankey_flows
from repro.datasets import usc


def hop_series(study, focus_hop: int, sample_every: int = 6) -> VectorSeries:
    """Re-extract catchments at a different focus hop from the sweeps."""
    series = VectorSeries(study.clients.network_ids(), StateCatalog())
    for when in study.sample_times[::sample_every]:
        series.append_mapping(
            study.enterprise.catchments_at_hop(when, focus_hop=focus_hop), when
        )
    return series


def main() -> None:
    print("generating the USC scenario (eight months of sweeps)...")
    study = usc.generate(num_blocks=700, cadence=timedelta(days=4))
    report = Fenrir().run(study.series)

    print()
    print("== hop-3 mode timeline (paper Figure 2b) ==")
    print(report.mode_timeline())

    print()
    print("== adjusting the focus: hops 2, 3 and 4 ==")
    for hop in (2, 3, 4):
        series = hop_series(study, hop)
        hop_report = Fenrir().run(series)
        low, high = (
            hop_report.modes.phi_between(0, 1)
            if len(hop_report.modes) > 1
            else (1.0, 1.0)
        )
        print(
            f"  hop {hop}: {len(hop_report.modes)} modes; "
            f"cross-mode Φ [{low:.2f}, {high:.2f}] "
            "(changes grow with distance from the enterprise)"
        )

    print()
    print("== Sankey flows before/after (paper Figures 7/8) ==")
    for label, when in (("before", datetime(2024, 10, 1)), ("after", datetime(2025, 2, 15))):
        records = study.enterprise.sweep(when)
        paths = [
            [study.enterprise.name_of(asn) or "?" for asn in record.as_path()]
            for record in records.values()
        ]
        print(f"--- {label} ({when:%Y-%m-%d}) ---")
        print(render_sankey(sankey_flows(paths, max_hops=3), top_per_level=4))

    print()
    print("== who serves the destinations now? ==")
    last = study.series[len(study.series) - 1]
    for name, count in Counter(last.to_mapping().values()).most_common(5):
        print(f"  {name:>8}: {count} /24 blocks")


if __name__ == "__main__":
    main()
