"""Quickstart: run Fenrir on a hand-made routing series.

Builds a tiny study — eight networks observed daily for three weeks,
with one site drained for a week in the middle — and walks the full
pipeline: cleaning, comparison, mode discovery, event detection,
transition matrices and text visualizations.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from datetime import datetime, timedelta

from repro.core import Fenrir, VectorSeries, transition_matrix
from repro.core.viz import render_transition_table


def build_series() -> VectorSeries:
    networks = [f"192.0.2.{i * 8}/29" for i in range(8)]
    series = VectorSeries(networks)
    start = datetime(2025, 1, 1)
    for day in range(21):
        when = start + timedelta(days=day)
        if 7 <= day < 14:  # the AMS site drains for a week
            assignment = {n: "LAX" for n in networks}
        else:
            assignment = {
                n: ("AMS" if index < 3 else "LAX")
                for index, n in enumerate(networks)
            }
        if day == 10:  # one missed measurement: stays unknown until cleaned
            assignment.pop(networks[-1])
        series.append_mapping(assignment, when)
    return series


def main() -> None:
    series = build_series()
    report = Fenrir().run(series)

    print("== summary ==")
    print(report.summary())
    print()
    print("== mode timeline ==")
    print(report.mode_timeline())
    print()
    print("== similarity heatmap ==")
    print(report.heatmap(max_size=21))
    print()
    print("== catchment stack plot ==")
    print(report.stackplot(width=32))
    print()

    if report.events:
        event = report.events[0]
        print(f"== first detected event: {event.start:%Y-%m-%d} ==")
        before = report.cleaned[event.start_index]
        after = report.cleaned[min(event.end_index, len(report.cleaned) - 1)]
        print(render_transition_table(transition_matrix(before, after)))


if __name__ == "__main__":
    main()
