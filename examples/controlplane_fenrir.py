"""Fenrir on control-plane data: collectors, update streams, hegemony.

The paper's future work, running: instead of active probing, feed
Fenrir from a RouteViews-style route collector watching the B-Root
prefix, watch the BGP update stream around a site drain, and use
AS-hegemony to quantify who an enterprise depends on before and after
its reconfiguration.

Run:  python examples/controlplane_fenrir.py
"""

from __future__ import annotations

import random
from datetime import datetime, timedelta

from repro.bgp.updates import update_stream
from repro.controlplane import RouteCollector, hegemony_scores, origin_series
from repro.core import Fenrir
from repro.datasets import broot, usc
from repro.net.addr import parse_prefix


def main() -> None:
    print("building the B-Root scenario and a 200-peer collector...")
    study = broot.generate(num_blocks=600, cadence=timedelta(days=14))
    scenario = study.service.scenario
    vantages = random.Random(11).sample(sorted(scenario.topology.nodes), 200)
    collector = RouteCollector(scenario, vantages)

    print()
    print("== Fenrir on collector-derived catchments ==")
    series = origin_series(collector, study.sample_times)
    report = Fenrir().run(series)
    print(report.mode_timeline())

    print()
    print("== the update stream around the ARI shutdown ==")
    window = [
        broot.ARI_SHUTDOWN + timedelta(days=offset) for offset in (-7, -1, 0, 1, 7)
    ]
    prefix = parse_prefix("199.9.14.0/24")  # B-Root's real prefix
    updates = list(update_stream(scenario, vantages[:50], window, prefix))
    initial = sum(1 for u in updates if u.timestamp == int(window[0].timestamp()))
    churn = len(updates) - initial
    print(f"  {initial} session-establishment announcements, then {churn} updates")
    for update in updates[initial:][:5]:
        print(f"  {update.to_line()}")

    print()
    print("== AS hegemony across the USC reconfiguration ==")
    usc_study = usc.generate(num_blocks=500, cadence=timedelta(days=30))
    usc_scenario = usc_study.enterprise.scenario
    stubs = [
        asn
        for asn, node in usc_scenario.topology.nodes.items()
        if node.tier == 3 and asn != usc.USC
    ]
    peers = random.Random(5).sample(stubs, 120)
    usc_collector = RouteCollector(usc_scenario, peers)
    names = {usc.ARN_A: "ARN-A", usc.ARN_B: "ARN-B", usc.ANN: "ANN",
             usc.NTT: "NTT", usc.HE: "HE"}
    for label, when in (("before", datetime(2024, 10, 1)), ("after", datetime(2025, 2, 15))):
        scores = hegemony_scores(usc_collector.paths_at(when))
        named = {
            names[asn]: score for asn, score in scores.items() if asn in names
        }
        row = ", ".join(f"{k}={v:.2f}" for k, v in sorted(named.items()))
        print(f"  {label:>6}: {row}")


if __name__ == "__main__":
    main()
