"""An operator's day with Fenrir: stream, detect, explain, act.

Chains the operator-facing extensions end to end on a B-Root-like
anycast service:

1. stream measurement rounds through :class:`OnlineFenrir` and get
   told, live, when routing changes and whether it matches a known mode;
2. ask :func:`explain_event` for the triage briefing (who moved where,
   is this a recurrence, what happened to latency);
3. build a TE *playbook* of available actions and ask which one would
   return routing to the pre-event mode.

Run:  python examples/operator_workflow.py
"""

from __future__ import annotations

import random
from datetime import datetime, timedelta

from repro.anycast import (
    AnycastService,
    AtlasFleet,
    build_playbook,
    recommend,
)
from repro.bgp import SiteDrain
from repro.bgp.topology import stub_ases
from repro.core import Fenrir, OnlineFenrir, explain_event
from repro.core.series import VectorSeries
from repro.core.vector import StateCatalog
from repro.datasets.builders import SiteSpec, attach_sites, build_topology
from repro.latency.model import RttModel


def main() -> None:
    rng = random.Random(99)
    topo = build_topology(rng, num_tier1=5, num_tier2=24, num_stubs=240)
    sites = attach_sites(
        topo, [SiteSpec("LAX", "LAX", 3), SiteSpec("AMS", "AMS", 2), SiteSpec("SIN", "SIN", 2)]
    )
    service = AnycastService(topo, sites)
    t0 = datetime(2025, 6, 1)
    # A third party will break a transit link mid-month; the operator
    # does not know this yet.
    drain = SiteDrain("AMS", t0 + timedelta(days=10), t0 + timedelta(days=16))
    service.add_event(drain)

    fleet = AtlasFleet.place_vps(service, stub_ases(topo), count=400, rng=rng)

    print("== live stream through OnlineFenrir ==")
    tracker = OnlineFenrir(
        networks=fleet.network_ids(), event_threshold=0.05, mode_threshold=0.85
    )
    series = VectorSeries(fleet.network_ids(), StateCatalog())
    for day in range(30):
        when = t0 + timedelta(days=day)
        observations = fleet.measure(when)
        series.append_mapping(observations, when)
        update = tracker.ingest(observations, when)
        if update.is_event or update.recurred:
            flavor = []
            if update.is_new_mode:
                flavor.append("NEW mode")
            if update.recurred:
                flavor.append(f"returned to mode {update.mode_id}")
            print(
                f"  {when:%Y-%m-%d}: step change {update.step_change:.2f} "
                f"-> mode {update.mode_id} ({', '.join(flavor) or 'known mode'})"
            )

    print()
    print("== offline triage of the first event ==")
    report = Fenrir().run(series)
    event = report.events[0]
    model = RttModel(jitter_ms=0)
    locations = {
        f"vp{vp.vp_id}": topo.nodes[vp.asn].location for vp in fleet.vps
    }
    site_points = {site.label: site.location for site in sites}

    def rtts_at(index):
        assignment = report.cleaned[index].to_mapping()
        return model.table(assignment, locations, site_points)

    explanation = explain_event(
        report, event, rtts_at(event.start_index), rtts_at(event.end_index)
    )
    print(" ", explanation.headline())
    for source, target, count in explanation.top_movements[:3]:
        print(f"    {source} -> {target}: {count:.0f} VPs")

    print()
    print("== what action restores the pre-event routing? ==")
    during = t0 + timedelta(days=12)
    target = service.catchment_map(t0)  # the mode we want back
    playbook = build_playbook(service, during)
    entry, similarity = recommend(playbook, target)
    print(f"  best action: {entry.name!r} (predicted Φ to target {similarity:.2f})")
    print(f"  predicted catchments: {entry.aggregates}")
    if entry.action is None:
        print(
        "  (the drained site is simply gone: no TE action can recover the old\n"
        "   mode, and the playbook says so before the operator burns a change\n"
        "   window finding out)"
        )


if __name__ == "__main__":
    main()
