"""Tests for data cleaning: state mapping, micro-catchments, interpolation."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cleaning import (
    drop_networks,
    fold_micro_catchments,
    interpolate_series,
    map_unmapped_states,
    nearest_viable_hop,
)
from repro.core.series import VectorSeries
from repro.core.vector import OTHER, UNKNOWN, StateCatalog


def series_from(maps, networks=None, t0=datetime(2024, 1, 1)):
    networks = networks or sorted(maps[0])
    series = VectorSeries(networks, StateCatalog())
    for index, mapping in enumerate(maps):
        series.append_mapping(mapping, t0 + timedelta(days=index))
    return series


class TestMapUnmapped:
    def test_unknown_sites_fold_to_other(self):
        series = series_from([{"x": "LAX", "y": "bogus"}])
        cleaned = map_unmapped_states(series, {"LAX"})
        assert cleaned[0].state_of("y") == OTHER
        assert cleaned[0].state_of("x") == "LAX"

    def test_specials_preserved(self):
        series = series_from([{"x": UNKNOWN, "y": "err"}])
        cleaned = map_unmapped_states(series, {"LAX"})
        assert cleaned[0].state_of("x") == UNKNOWN
        assert cleaned[0].state_of("y") == "err"


class TestMicroCatchments:
    def test_folds_small_peak_sites(self):
        maps = [
            {"a": "BIG", "b": "BIG", "c": "BIG", "d": "TINY"},
            {"a": "BIG", "b": "BIG", "c": "BIG", "d": "TINY"},
        ]
        cleaned, folded = fold_micro_catchments(series_from(maps), min_networks=2)
        assert folded == ["TINY"]
        assert cleaned[0].state_of("d") == OTHER

    def test_peak_not_mean_decides(self):
        # Site spikes to 3 once: peak >= 3 keeps it even if usually 0.
        maps = [
            {"a": "SPIKE", "b": "SPIKE", "c": "SPIKE"},
            {"a": "BIG", "b": "BIG", "c": "BIG"},
        ]
        _cleaned, folded = fold_micro_catchments(series_from(maps), min_networks=3)
        assert folded == []

    def test_fraction_threshold(self):
        maps = [{"a": "BIG", "b": "BIG", "c": "BIG", "d": "SMALL"}]
        _cleaned, folded = fold_micro_catchments(
            series_from(maps), min_fraction=0.30
        )
        assert folded == ["SMALL"]

    def test_no_thresholds_keeps_everything(self):
        series = series_from([{"a": "X", "b": "Y"}])
        cleaned, folded = fold_micro_catchments(series)
        assert folded == []
        assert cleaned[0].to_mapping() == series[0].to_mapping()


class TestDropNetworks:
    def test_drop_by_predicate(self):
        series = series_from([{"10.0.0.0/24": "A", "192.168.0.0/24": "B"}])
        cleaned = drop_networks(series, lambda n: n.startswith("192.168"))
        assert cleaned.networks == ("10.0.0.0/24",)


class TestInterpolation:
    def test_gap_split_between_neighbours(self):
        # Gap of 4 unknowns between A and B: first half takes A, second B.
        maps = (
            [{"x": "A"}]
            + [{"x": UNKNOWN}] * 4
            + [{"x": "B"}]
        )
        cleaned = interpolate_series(series_from(maps), limit=3)
        states = [cleaned[i].state_of("x") for i in range(6)]
        assert states == ["A", "A", "A", "B", "B", "B"]

    def test_tie_goes_to_earlier(self):
        maps = [{"x": "A"}, {"x": UNKNOWN}, {"x": UNKNOWN}, {"x": "B"}]
        cleaned = interpolate_series(series_from(maps), limit=3)
        states = [cleaned[i].state_of("x") for i in range(4)]
        assert states == ["A", "A", "B", "B"]

    def test_limit_respected(self):
        maps = [{"x": "A"}] + [{"x": UNKNOWN}] * 9 + [{"x": "B"}]
        cleaned = interpolate_series(series_from(maps), limit=3)
        states = [cleaned[i].state_of("x") for i in range(11)]
        assert states[:4] == ["A", "A", "A", "A"]
        assert states[4:7] == [UNKNOWN, UNKNOWN, UNKNOWN]
        assert states[7:] == ["B", "B", "B", "B"]

    def test_leading_gap_backfills_within_limit(self):
        maps = [{"x": UNKNOWN}, {"x": UNKNOWN}, {"x": "A"}]
        cleaned = interpolate_series(series_from(maps), limit=3)
        assert [cleaned[i].state_of("x") for i in range(3)] == ["A", "A", "A"]

    def test_trailing_gap_forward_fills(self):
        maps = [{"x": "A"}, {"x": UNKNOWN}, {"x": UNKNOWN}]
        cleaned = interpolate_series(series_from(maps), limit=3)
        assert [cleaned[i].state_of("x") for i in range(3)] == ["A", "A", "A"]

    def test_limit_zero_is_noop(self):
        maps = [{"x": "A"}, {"x": UNKNOWN}, {"x": "A"}]
        cleaned = interpolate_series(series_from(maps), limit=0)
        assert cleaned[1].state_of("x") == UNKNOWN

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            interpolate_series(series_from([{"x": "A"}]), limit=-1)

    def test_all_unknown_column_stays_unknown(self):
        maps = [{"x": UNKNOWN}] * 4
        cleaned = interpolate_series(series_from(maps), limit=3)
        assert all(cleaned[i].state_of("x") == UNKNOWN for i in range(4))

    @settings(max_examples=50)
    @given(
        st.lists(
            st.sampled_from(["A", "B", UNKNOWN]), min_size=1, max_size=20
        ),
        st.integers(min_value=0, max_value=5),
    )
    def test_invariants(self, column, limit):
        maps = [{"x": state} for state in column]
        series = series_from(maps)
        cleaned = interpolate_series(series, limit=limit)
        for index, original in enumerate(column):
            result = cleaned[index].state_of("x")
            if original != UNKNOWN:
                # Known observations are never rewritten.
                assert result == original
            elif result != UNKNOWN:
                # Filled values come from a known neighbour within reach.
                lo = max(0, index - limit)
                hi = min(len(column), index + limit + 1)
                window = [s for s in column[lo:hi] if s != UNKNOWN]
                assert result in window


class TestNearestViableHop:
    def test_present_hop_returned(self):
        assert nearest_viable_hop(["A", "B", "C"], 1) == "B"

    def test_fills_from_earlier_first(self):
        assert nearest_viable_hop(["A", None, "C"], 1) == "A"

    def test_fills_from_later_when_no_earlier(self):
        assert nearest_viable_hop([None, None, "C"], 1) == "C"

    def test_max_offset(self):
        assert nearest_viable_hop(["A", None, None, None], 3, max_offset=2) is None
        assert nearest_viable_hop(["A", None, None, None], 3, max_offset=3) == "A"

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            nearest_viable_hop(["A"], 5)
