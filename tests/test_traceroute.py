"""Tests for the traceroute substrate: engine, warts I/O, enterprise."""

from __future__ import annotations

import io
from datetime import timedelta

import pytest

from repro.bgp.clients import allocate_clients
from repro.bgp.events import LinkRemove
from repro.net.addr import parse_address
from repro.traceroute.engine import TracerouteEngine, TracerouteRecord
from repro.traceroute.enterprise import MultihomedEnterprise
from repro.traceroute.warts import read_records, record_from_json, record_to_json, write_records


@pytest.fixture
def engine(small_topology, rng):
    return TracerouteEngine(small_topology, rng, hop_response_probability=1.0)


DEST = parse_address("20.0.0.1")


class TestEngine:
    def test_full_path_responds(self, engine):
        record = engine.trace([21, 11, 1, 2, 13, 23], DEST)
        assert record.reached
        assert record.hop_ases() == [21, 11, 1, 2, 13, 23]
        assert record.as_path() == [21, 11, 1, 2, 13, 23]

    def test_rtt_monotonic(self, engine):
        record = engine.trace([21, 11, 1, 2, 13, 23], DEST)
        rtts = [hop.rtt_ms for hop in record.hops if hop]
        assert rtts == sorted(rtts)
        assert rtts[0] > 0

    def test_ttl_truncation(self, small_topology, rng):
        engine = TracerouteEngine(small_topology, rng, max_ttl=3, hop_response_probability=1.0)
        record = engine.trace([21, 11, 1, 2, 13, 23], DEST)
        assert len(record.hops) == 3
        assert not record.reached

    def test_loss_produces_gaps(self, small_topology, rng):
        engine = TracerouteEngine(small_topology, rng, hop_response_probability=0.0)
        record = engine.trace([21, 11], DEST)
        assert record.hops == [None, None]
        assert record.as_path() == []

    def test_private_hops_unmapped(self, small_topology, rng):
        engine = TracerouteEngine(
            small_topology, rng, hop_response_probability=1.0,
            private_hop_ases=frozenset({21}),
        )
        record = engine.trace([21, 11], DEST)
        assert record.hops[0] is not None
        assert record.hops[0].asn is None
        assert record.hops[0].address.is_private
        assert record.as_path() == [11]

    def test_per_as_hops(self, small_topology, rng):
        engine = TracerouteEngine(
            small_topology, rng, hop_response_probability=1.0, per_as_hops=2
        )
        record = engine.trace([21, 11], DEST)
        assert record.hop_ases() == [21, 21, 11, 11]
        assert record.as_path() == [21, 11]  # deduplicated


class TestWarts:
    def make_record(self, engine):
        return engine.trace([21, 11, 1], DEST)

    def test_json_round_trip(self, engine):
        record = self.make_record(engine)
        rebuilt = record_from_json(record_to_json(record))
        assert rebuilt.destination == record.destination
        assert rebuilt.reached == record.reached
        assert rebuilt.hop_ases() == record.hop_ases()

    def test_round_trip_preserves_gaps(self, small_topology, rng):
        engine = TracerouteEngine(small_topology, rng, hop_response_probability=0.5)
        record = engine.trace([21, 11, 1, 2, 13], DEST)
        rebuilt = record_from_json(record_to_json(record))
        assert [h is None for h in rebuilt.hops] == [h is None for h in record.hops]

    def test_stream_round_trip(self, engine):
        records = [self.make_record(engine) for _ in range(3)]
        buffer = io.StringIO()
        assert write_records(records, buffer) == 3
        buffer.seek(0)
        rebuilt = list(read_records(buffer))
        assert len(rebuilt) == 3

    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError):
            record_from_json({"type": "ping"})

    def test_stop_reason_encodes_reached(self, engine):
        record = self.make_record(engine)
        record.reached = False
        assert record_to_json(record)["stop_reason"] == "GAPLIMIT"


class TestEnterprise:
    @pytest.fixture
    def enterprise(self, small_topology, rng):
        clients = allocate_clients([22, 23], [2, 2])
        return MultihomedEnterprise(
            topology=small_topology,
            enterprise_asn=21,
            clients=clients,
            rng=rng,
            as_names={11: "R1", 12: "R2", 13: "R3", 1: "T1", 2: "T2"},
        )

    def test_forward_path_starts_at_enterprise(self, enterprise, t0):
        block = enterprise.clients.blocks[0]
        path = enterprise.forward_as_path(block, t0)
        assert path is not None
        assert path[0] == 21
        assert path[-1] == enterprise.clients.as_of(block)

    def test_sweep_produces_records(self, enterprise, t0):
        records = enterprise.sweep(t0)
        assert len(records) == 4
        for record in records.values():
            assert isinstance(record, TracerouteRecord)

    def test_catchments_at_hop2_are_upstreams(self, enterprise, t0):
        enterprise.engine.hop_response_probability = 1.0
        catchments = enterprise.catchments_at_hop(t0, focus_hop=2)
        assert set(catchments.values()) <= {"R1", "R2", "R3", "T1", "T2"}

    def test_hop1_is_spatially_filled(self, enterprise, t0):
        # Hop 1 answers from private space; the nearest viable hop fills it.
        enterprise.engine.hop_response_probability = 1.0
        catchments = enterprise.catchments_at_hop(t0, focus_hop=1)
        assert catchments  # filled from hop 2, not empty

    def test_focus_hop_validation(self, enterprise, t0):
        with pytest.raises(ValueError):
            enterprise.catchments_at_hop(t0, focus_hop=0)

    def test_event_changes_catchments(self, enterprise, t0):
        # Before: 22's blocks ride USC(21) -> R1 -> 22 (hop 3 = dest AS).
        # Cutting R1-22 forces the longer path via T1/R2, so the hop-3
        # catchment of those blocks changes.
        enterprise.engine.hop_response_probability = 1.0
        before = enterprise.catchments_at_hop(t0, focus_hop=3)
        enterprise.add_event(LinkRemove(11, 22, t0 + timedelta(days=1)))
        after = enterprise.catchments_at_hop(t0 + timedelta(days=1), focus_hop=3)
        assert before != after

    def test_unreachable_destination_skipped(self, enterprise, t0, small_topology):
        enterprise.add_event(LinkRemove(13, 23, t0))
        enterprise.add_event(LinkRemove(2, 13, t0))
        records = enterprise.sweep(t0)
        blocks_of_23 = set(map(str, enterprise.clients.blocks_of(23)))
        assert all(str(b) not in blocks_of_23 for b in records)
