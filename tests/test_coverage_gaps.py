"""Focused tests for paths the broader suites exercise only implicitly."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.cleaning import fold_micro_catchments
from repro.core.series import VectorSeries
from repro.core.vector import StateCatalog
from repro.core.viz import render_heatmap
from repro.core.weighting import representation_weights
from repro.net.addr import parse_prefix

T0 = datetime(2025, 1, 1)


class TestRepresentationWeights:
    def test_sole_vp_in_big_prefix(self):
        weights = representation_weights(
            ["vp1", "vp2"], {"vp1": parse_prefix("10.0.0.0/16")}
        )
        assert weights.tolist() == [256.0, 1.0]

    def test_longer_than_24_weighs_one(self):
        weights = representation_weights(
            ["vp1"], {"vp1": parse_prefix("10.0.0.0/26")}
        )
        assert weights.tolist() == [1.0]

    def test_weighting_changes_phi_for_big_representatives(self):
        from repro.core.compare import phi
        from repro.core.vector import RoutingVector

        catalog = StateCatalog()
        networks = ["vp1", "vp2"]
        a = RoutingVector.from_mapping(
            {"vp1": "LAX", "vp2": "LAX"}, catalog=catalog, networks=networks
        )
        b = RoutingVector.from_mapping(
            {"vp1": "AMS", "vp2": "LAX"}, catalog=catalog, networks=networks
        )
        weights = representation_weights(networks, {"vp1": parse_prefix("10.0.0.0/16")})
        # vp1 represents 256 blocks, so its move dominates.
        assert phi(a, b, weights=weights) < 0.01
        assert phi(a, b) == 0.5


class TestWeightedMicroCatchments:
    def test_weights_decide_micro_status(self):
        # One network on site SMALL, but that network is heavy: with
        # weights it is not micro; without, it is.
        series = VectorSeries(["a", "b", "c"], StateCatalog())
        series.append_mapping({"a": "BIG", "b": "BIG", "c": "SMALL"}, T0)
        series.append_mapping({"a": "BIG", "b": "BIG", "c": "SMALL"}, T0 + timedelta(days=1))
        heavy = np.array([1.0, 1.0, 50.0])
        _unweighted, folded = fold_micro_catchments(series, min_networks=2)
        assert folded == ["SMALL"]
        _weighted, folded_weighted = fold_micro_catchments(
            series, min_networks=2, weights=heavy
        )
        assert folded_weighted == []


class TestHeatmapDownsampling:
    def test_stride_reduces_rows(self):
        similarity = np.ones((130, 130))
        text = render_heatmap(similarity, max_size=40)
        rows = [line for line in text.splitlines() if not line.startswith("scale")]
        assert len(rows) <= 44
        assert "stride=4" in text

    def test_block_mean_preserved(self):
        # A half-similar matrix downsampled: shades reflect the mean.
        similarity = np.zeros((60, 60))
        similarity[:30, :30] = 1.0
        text = render_heatmap(similarity, max_size=30)
        lines = [line for line in text.splitlines() if not line.startswith("scale")]
        assert lines[0].strip().startswith("@" * 10)


class TestSvgHeatmapDownsampling:
    def test_max_cells_respected(self):
        import xml.etree.ElementTree as ET

        from repro.viz_svg import heatmap_svg

        similarity = np.random.default_rng(0).uniform(0, 1, (300, 300))
        similarity = (similarity + similarity.T) / 2
        svg = heatmap_svg(similarity, max_cells=50)
        root = ET.fromstring(svg.to_string())
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect") or root.findall(".//rect")
        assert len(rects) <= 151 * 151  # way below 300^2
        assert len(rects) >= 49 * 49


class TestVerfploeterRetries:
    def test_loss_reduces_coverage_and_retries_recover(self, small_topology, t0, rng):
        import random

        from repro.anycast.service import AnycastService, AnycastSite
        from repro.anycast.verfploeter import VerfploeterMapper
        from repro.bgp.clients import allocate_clients
        from repro.measure.loss import IidLoss
        from repro.net.geo import city
        from repro.net.hitlist import Hitlist

        sites = [AnycastSite("A", 21, city("ORD"))]
        service = AnycastService(small_topology, sites)
        clients = allocate_clients([22], [60])
        hitlist = Hitlist.from_blocks_bimodal(clients.blocks, rng, alive_fraction=1.0)

        lossy = VerfploeterMapper(
            service, hitlist, clients, random.Random(3),
            loss=IidLoss(0.5, random.Random(4)), retries=0,
        )
        coverage_no_retry = len(lossy.measure(t0))

        retrying = VerfploeterMapper(
            service, hitlist, clients, random.Random(3),
            loss=IidLoss(0.5, random.Random(4)), retries=3,
        )
        coverage_retry = len(retrying.measure(t0))
        assert coverage_retry > coverage_no_retry
        assert retrying.last_stats.probes_sent > 60


class TestOutcomeAccessors:
    def test_routing_outcome_misc(self, small_topology):
        from repro.bgp.policy import Announcement
        from repro.bgp.routing import compute_routes

        outcome = compute_routes(small_topology, [Announcement(origin=21, label="A")])
        assert outcome[21].next_hop == 21  # origin's next hop is itself
        assert outcome[11].next_hop == 21
        assert outcome.path_of(999) is None
        assert outcome.label_of(999, "gone") == "gone"

    def test_node_names_default(self, small_topology):
        assert small_topology.nodes[1].name == "T1"


class TestCliDemoSmoke:
    @pytest.mark.parametrize("name", ["groot", "wikipedia"])
    def test_demo_runs(self, name, capsys):
        from repro.cli import main

        assert main(["demo", name]) == 0
        out = capsys.readouterr().out
        assert "modes:" in out


class TestConcentration:
    def make(self, mapping, networks=None):
        from repro.core.vector import RoutingVector

        return RoutingVector.from_mapping(
            mapping, catalog=StateCatalog(), networks=networks
        )

    def test_single_site_is_one(self):
        vector = self.make({"a": "LAX", "b": "LAX"})
        assert vector.concentration() == pytest.approx(1.0)
        assert vector.effective_sites() == pytest.approx(1.0)

    def test_even_split(self):
        vector = self.make({"a": "LAX", "b": "AMS"})
        assert vector.concentration() == pytest.approx(0.5)
        assert vector.effective_sites() == pytest.approx(2.0)

    def test_specials_excluded(self):
        vector = self.make({"a": "LAX", "b": "err", "c": "unknown"})
        assert vector.concentration() == pytest.approx(1.0)

    def test_weighted(self):
        import numpy as np

        vector = self.make({"a": "LAX", "b": "AMS"}, networks=["a", "b"])
        concentration = vector.concentration(np.array([3.0, 1.0]))
        assert concentration == pytest.approx(0.75**2 + 0.25**2)

    def test_all_unknown_is_nan(self):
        import numpy as np

        vector = self.make({"a": "unknown"})
        assert np.isnan(vector.concentration())


class TestEcsSupportProbe:
    def make_mapper(self):
        import random
        from datetime import datetime

        from repro.net.geo import city
        from repro.webmap.frontends import GeoFleet, GeoSite
        from repro.webmap.mapper import EcsMapper

        fleet = GeoFleet(
            sites=[GeoSite("us", city("NYC")), GeoSite("eu", city("LHR"))]
        )

        def select(prefix, when):
            point = city("NYC") if (prefix.network >> 8) % 2 == 0 else city("LHR")
            return fleet.select(prefix, point, when)

        return EcsMapper(hostname="www.example.com", select=select,
                         rng=random.Random(1)), datetime(2025, 1, 1)

    def probe_prefixes(self):
        return [parse_prefix("20.0.0.0/24"), parse_prefix("20.0.1.0/24"),
                parse_prefix("20.0.2.0/24"), parse_prefix("20.0.3.0/24")]

    def test_passing_resolver_detected(self):
        mapper, when = self.make_mapper()
        assert mapper.resolver_supports_ecs(when, self.probe_prefixes())

    def test_stripping_resolver_detected(self):
        mapper, when = self.make_mapper()
        assert not mapper.resolver_supports_ecs(
            when, self.probe_prefixes(), ecs_passthrough=False
        )

    def test_needs_two_probes(self):
        mapper, when = self.make_mapper()
        with pytest.raises(ValueError):
            mapper.resolver_supports_ecs(when, [parse_prefix("20.0.0.0/24")])
