"""Oracle equivalence: the parallel engine must reproduce the serial Φ.

The serial :func:`repro.core.compare.similarity_matrix` is the
reference implementation (the ``n_jobs=1`` path of the engine). Every
parallel configuration — process counts, tile sizes, unknown policies,
weighted or not — must agree with it to 1e-12, including where the
NaNs land under :attr:`UnknownPolicy.EXCLUDE`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compare import UnknownPolicy, distance_matrix, similarity_matrix
from repro.core.series import VectorSeries
from repro.core.vector import StateCatalog, UNKNOWN
from repro.parallel import SimilarityEngine, Tile, plan_tiles, reflect_lower

TOLERANCE = 1e-12


def _weights_for(series: VectorSeries, kind: str) -> np.ndarray | None:
    if kind == "none":
        return None
    rng = np.random.default_rng(99)
    return rng.uniform(0.1, 5.0, len(series.networks))


def assert_equivalent(reference: np.ndarray, result: np.ndarray) -> None:
    assert result.shape == reference.shape
    assert np.array_equal(np.isnan(reference), np.isnan(result)), "NaN placement differs"
    finite = ~np.isnan(reference)
    assert np.all(np.abs(reference[finite] - result[finite]) <= TOLERANCE)


class TestEquivalenceGrid:
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    @pytest.mark.parametrize("tile_size", [5, 16, 1000])
    @pytest.mark.parametrize("policy", list(UnknownPolicy))
    @pytest.mark.parametrize("weight_kind", ["none", "random"])
    def test_matches_serial_oracle(
        self, make_series, n_jobs, tile_size, policy, weight_kind
    ):
        series = make_series(
            num_networks=60, num_rounds=18, num_states=6,
            unknown_fraction=0.2, churn=0.2, seed=42,
        )
        weights = _weights_for(series, weight_kind)
        reference = similarity_matrix(series, weights, policy)
        engine = SimilarityEngine(n_jobs=n_jobs, tile_size=tile_size)
        result = engine.similarity_matrix(series, weights, policy)
        assert_equivalent(reference, result)

    @pytest.mark.parametrize("n_jobs", [2, 3])
    def test_many_states_regime(self, make_series, n_jobs):
        """The serial fallback (per-pair rows) is also reproduced."""
        series = make_series(
            num_networks=80, num_rounds=10, num_states=120,
            unknown_fraction=0.1, churn=0.6, seed=7,
        )
        reference = similarity_matrix(series)
        result = SimilarityEngine(n_jobs=n_jobs, tile_size=4).similarity_matrix(series)
        assert_equivalent(reference, result)

    def test_nan_placement_under_exclude(self):
        """A pair with no jointly known network is NaN in both engines."""
        series = VectorSeries(["a", "b"], StateCatalog())
        from datetime import datetime, timedelta

        t0 = datetime(2024, 1, 1)
        series.append_mapping({"a": "X", "b": UNKNOWN}, t0)
        series.append_mapping({"a": UNKNOWN, "b": "Y"}, t0 + timedelta(days=1))
        series.append_mapping({"a": "X", "b": "Y"}, t0 + timedelta(days=2))
        reference = similarity_matrix(series, policy=UnknownPolicy.EXCLUDE)
        assert np.isnan(reference[0, 1]) and np.isnan(reference[1, 0])
        result = SimilarityEngine(n_jobs=2, tile_size=1).similarity_matrix(
            series, policy=UnknownPolicy.EXCLUDE
        )
        assert_equivalent(reference, result)

    def test_distance_matrix_matches(self, make_series):
        series = make_series(seed=5, unknown_fraction=0.3)
        reference = distance_matrix(series, policy=UnknownPolicy.EXCLUDE)
        result = SimilarityEngine(n_jobs=2, tile_size=8).distance_matrix(
            series, policy=UnknownPolicy.EXCLUDE
        )
        assert np.all(np.abs(reference - result) <= TOLERANCE)


class TestTilePlan:
    def test_plan_covers_upper_triangle_once(self):
        tiles = plan_tiles(23, 5)
        covered = np.zeros((23, 23), dtype=int)
        for tile in tiles:
            covered[tile.row_start : tile.row_stop, tile.col_start : tile.col_stop] += 1
        upper = np.triu_indices(23)
        assert np.all(covered[upper] >= 1)
        # Diagonal blocks cover a little of the lower triangle, but no
        # cell is ever computed twice.
        assert covered.max() == 1

    def test_single_tile_when_tile_size_dominates(self):
        assert plan_tiles(10, 1000) == [Tile(0, 10, 0, 10)]

    def test_empty_and_invalid(self):
        assert plan_tiles(0, 8) == []
        with pytest.raises(ValueError):
            plan_tiles(10, 0)
        with pytest.raises(ValueError):
            SimilarityEngine(tile_size=-1)

    def test_reflect_lower(self):
        matrix = np.triu(np.arange(16, dtype=float).reshape(4, 4))
        reflect_lower(matrix)
        assert np.array_equal(matrix, matrix.T)


@pytest.mark.slow
def test_stress_large_series_multiprocess(make_series):
    """Large-T multi-process run (RUN_SLOW=1 only): still oracle-exact."""
    series = make_series(
        num_networks=500, num_rounds=160, num_states=40,
        unknown_fraction=0.15, churn=0.1, seed=11,
    )
    weights = np.random.default_rng(1).uniform(0.5, 2.0, 500)
    for policy in UnknownPolicy:
        reference = similarity_matrix(series, weights, policy)
        result = SimilarityEngine(n_jobs=4, tile_size=32).similarity_matrix(
            series, weights, policy
        )
        assert_equivalent(reference, result)
