"""Ingest dedup: reference records must be invisible to replay.

The contract under test (docs/serving.md, docs/vps.md): a monitor with
dedup on journals recurring identical rounds as compact reference
records, and a reader expands them so that recovery is *byte-for-byte*
identical — same tracker state document — to an undeduplicated
monitor fed the same stream. Properties:

* arbitrary recurring/novel interleavings replay equal to the
  non-dedup oracle (Hypothesis);
* refs never cross a journal reset (checkpoint/snapshot) and the mode
  survives reopen;
* toggling mid-stream is safe at any point;
* a SIGKILL mid-dedup-ingest recovers to the uninterrupted oracle on
  the acked prefix (the bench_serve acceptance scenario, dedup-mode);
* the ``vps``/``dedup`` wire commands create plan-backed monitors and
  report/toggle dedup.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from datetime import datetime, timedelta
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.online import OnlineFenrir
from repro.serve import ServeClient, ServeClientError, ServeConfig
from repro.serve.journal import JOURNAL_FILE, read_journal, ref_record_line
from repro.serve.monitor import OPTIONS_FILE, DurableMonitor
from repro.vps import VPPlan

from test_serve_server import ServerThread, connect

T0 = datetime(2025, 1, 1)
REPO_ROOT = Path(__file__).resolve().parent.parent
NETWORKS = ["n1", "n2", "n3"]
SITES = ["LAX", "AMS", "FRA"]


def rounds_from_choices(choices: list[int]) -> list[tuple[dict, datetime]]:
    """A stream where equal consecutive choices are recurring rounds."""
    return [
        (
            {network: SITES[(choice + i) % len(SITES)] for i, network in enumerate(NETWORKS)},
            T0 + timedelta(hours=index),
        )
        for index, choice in enumerate(choices)
    ]


def state_json(directory: Path, name: str) -> str:
    """Canonical tracker state after a fresh replay from disk."""
    monitor = DurableMonitor.open(directory, name)
    try:
        return json.dumps(monitor.tracker.to_state(), sort_keys=True)
    finally:
        monitor.close()


class TestReplayEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        choices=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=40),
        batched=st.booleans(),
    )
    def test_dedup_replay_matches_non_dedup_oracle(self, tmp_path_factory, choices, batched):
        tmp_path = tmp_path_factory.mktemp("dedup")
        stream = rounds_from_choices(choices)
        plain = DurableMonitor.create(tmp_path, "plain", NETWORKS)
        deduped = DurableMonitor.create(tmp_path, "deduped", NETWORKS, dedup=True)
        for monitor in (plain, deduped):
            if batched:
                result = monitor.ingest_batch(stream)
                assert result.error_index is None
            else:
                for states, when in stream:
                    monitor.ingest(states, when)
            monitor.close()

        assert state_json(tmp_path, "plain") == state_json(tmp_path, "deduped")

        # Dedup fired exactly on the recurring rounds, and the journal
        # reader expanded every ref to the full record it names.
        recurring = sum(1 for a, b in zip(choices, choices[1:]) if a == b)
        journal = (tmp_path / "deduped" / JOURNAL_FILE).read_text()
        refs = sum(1 for line in journal.splitlines() if '"ref":' in line)
        assert refs == recurring
        records, tail = read_journal(tmp_path / "deduped" / JOURNAL_FILE)
        assert tail is None
        assert [r.states for r in records] == [states for states, _ in stream]

    def test_refs_shrink_the_journal(self, tmp_path):
        stream = rounds_from_choices([0] * 50)
        plain = DurableMonitor.create(tmp_path, "plain", NETWORKS)
        deduped = DurableMonitor.create(tmp_path, "deduped", NETWORKS, dedup=True)
        for monitor in (plain, deduped):
            for states, when in stream:
                monitor.ingest(states, when)
            saved = monitor.dedup_stats()["bytes_saved"]
            monitor.close()
        plain_bytes = (tmp_path / "plain" / JOURNAL_FILE).stat().st_size
        dedup_bytes = (tmp_path / "deduped" / JOURNAL_FILE).stat().st_size
        assert dedup_bytes < plain_bytes
        # bytes_saved is exact, not an estimate.
        assert plain_bytes - dedup_bytes == saved


class TestJournalResets:
    def feed(self, monitor: DurableMonitor, count: int, start: int = 0) -> None:
        for index in range(start, start + count):
            monitor.ingest({n: "LAX" for n in NETWORKS}, T0 + timedelta(hours=index))

    def test_first_record_after_checkpoint_is_full(self, tmp_path):
        monitor = DurableMonitor.create(tmp_path, "svc", NETWORKS, dedup=True)
        self.feed(monitor, 5)
        monitor.checkpoint()
        self.feed(monitor, 3, start=5)
        lines = (tmp_path / "svc" / JOURNAL_FILE).read_text().splitlines()
        # Post-checkpoint journal: one full record, then refs again.
        assert '"ref":' not in lines[0]
        assert all('"ref":' in line for line in lines[1:])
        monitor.close()
        reopened = DurableMonitor.open(tmp_path, "svc")
        assert len(reopened.tracker.updates) == 8
        reopened.close()

    def test_mode_persists_across_reopen_and_first_round_is_full(self, tmp_path):
        monitor = DurableMonitor.create(tmp_path, "svc", NETWORKS, dedup=True)
        self.feed(monitor, 3)
        monitor.close()
        reopened = DurableMonitor.open(tmp_path, "svc")
        assert reopened.dedup
        # No cross-process memory of the journal tail: the first round
        # after reopen is journaled in full even though it recurs.
        before = (tmp_path / "svc" / JOURNAL_FILE).read_text().count('"ref":')
        self.feed(reopened, 2, start=3)
        lines = (tmp_path / "svc" / JOURNAL_FILE).read_text().splitlines()
        assert '"ref":' not in lines[3]
        assert '"ref":' in lines[4]
        assert lines[3] and before == 2
        reopened.close()

    def test_toggle_mid_stream_replays_equal(self, tmp_path):
        stream = rounds_from_choices([0, 0, 1, 1, 1, 0, 0, 2, 2, 2])
        oracle = OnlineFenrir(networks=NETWORKS)
        for states, when in stream:
            oracle.ingest(states, when)

        monitor = DurableMonitor.create(tmp_path, "svc", NETWORKS)
        for index, (states, when) in enumerate(stream):
            if index == 3:
                monitor.set_dedup(True)
            if index == 7:
                monitor.set_dedup(False)
            monitor.ingest(states, when)
        monitor.close()
        replayed = DurableMonitor.open(tmp_path, "svc")
        assert json.dumps(replayed.tracker.to_state(), sort_keys=True) == json.dumps(
            oracle.to_state(), sort_keys=True
        )
        replayed.close()

    def test_options_file_round_trips_and_tolerates_corruption(self, tmp_path):
        DurableMonitor.create(tmp_path, "svc", NETWORKS, dedup=True).close()
        assert (tmp_path / "svc" / OPTIONS_FILE).exists()
        reopened = DurableMonitor.open(tmp_path, "svc")
        assert reopened.dedup
        reopened.close()
        (tmp_path / "svc" / OPTIONS_FILE).write_text("{corrupt")
        degraded = DurableMonitor.open(tmp_path, "svc")
        assert not degraded.dedup  # corrupt options degrade to off
        degraded.close()

    def test_dangling_ref_is_detected(self, tmp_path):
        monitor = DurableMonitor.create(tmp_path, "svc", NETWORKS, dedup=True)
        self.feed(monitor, 2)
        monitor.close()
        path = tmp_path / "svc" / JOURNAL_FILE
        lines = path.read_text().splitlines()
        # A ref whose target full record is gone must not resolve:
        # valid-prefix recovery drops the tail at that line.
        path.write_text(lines[1] + "\n")
        records, tail = read_journal(path)
        assert records == []
        assert tail is not None and "dangling dedup reference" in tail.reason

    def test_ref_record_line_is_crc_checked(self):
        line = ref_record_line(7, T0, ref=6)
        document = json.loads(line)
        assert document["ref"] == 6 and document["seq"] == 7
        assert len(document["crc"]) == 8


class TestWireCommands:
    def plan_document(self) -> dict:
        plan = VPPlan(
            kept=("n1", "n3"),
            weights={"n1": 2.0, "n3": 1.0},
            total_networks=3,
            provenance={"series_sha256": "0" * 64},
        )
        return plan.to_document()

    def test_vps_creates_plan_backed_monitor(self, tmp_path):
        config = ServeConfig(data_dir=tmp_path / "data", port=0)
        with ServerThread(config) as server, connect(server) as client:
            created = client.vps("svc", plan=self.plan_document())
            assert created["kept"] == 2
            assert created["total_networks"] == 3
            assert created["dedup"] is True

            summary = client.vps("svc")
            assert summary["plan"]["kept"] == 2
            assert summary["dedup"]["mode"] == "on"
            assert summary["plan"]["provenance"]["series_sha256"] == "0" * 64

            # Ingest over the kept VPs only; recurring rounds dedup.
            for hour in range(4):
                client.ingest("svc", {"n1": "LAX", "n3": "AMS"}, T0 + timedelta(hours=hour))
            stats = client.dedup("svc")
            assert stats["mode"] == "on"
            assert stats["deduped_records"] == 3

            toggled = client.dedup("svc", mode="off")
            assert toggled["mode"] == "off"
            with pytest.raises(ServeClientError) as exc_info:
                client.dedup("svc", mode="sideways")
            assert exc_info.value.code == "bad_request"

    def test_vps_rejects_bad_plans(self, tmp_path):
        config = ServeConfig(data_dir=tmp_path / "data", port=0)
        with ServerThread(config) as server, connect(server) as client:
            with pytest.raises(ServeClientError) as exc_info:
                client.vps("svc", plan={"type": "not-a-plan"})
            assert exc_info.value.code == "bad_request"
            with pytest.raises(ServeClientError) as exc_info:
                client.vps("missing")
            assert exc_info.value.code == "no_such_monitor"


def serve_subprocess(data_dir: Path, snapshot_every: int = 0) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--data-dir",
            str(data_dir),
            "--snapshot-every",
            str(snapshot_every),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
    )


class TestKillMidDedupIngest:
    """SIGKILL while dedup refs are being written, then exact recovery."""

    def rounds(self, count: int = 200):
        # Long recurring runs punctuated by real changes: most records
        # in the journal are refs when the kill lands.
        for index in range(count):
            site = SITES[(index // 23) % len(SITES)]
            yield {n: site for n in NETWORKS}, T0 + timedelta(hours=index)

    def test_sigkill_mid_dedup_matches_oracle(self, tmp_path):
        data_dir = tmp_path / "data"
        process = serve_subprocess(data_dir, snapshot_every=60)
        try:
            line = process.stdout.readline().decode()
            assert line.startswith("listening on "), f"unexpected readiness: {line!r}"
            host, _, port = line.split()[-1].rpartition(":")
            port = int(port)
            acked = []
            with ServeClient(host=host, port=port) as client:
                client.request("create", monitor="svc", networks=NETWORKS, dedup=True)
                for index, (states, when) in enumerate(self.rounds()):
                    if index == 120:
                        process.send_signal(signal.SIGKILL)
                        process.wait(timeout=10)
                    try:
                        client.ingest("svc", states, when)
                    except (ConnectionError, OSError, ValueError):
                        break
                    acked.append((states, when))
        finally:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=10)

        assert len(acked) >= 100, "kill landed before enough rounds were acked"

        oracle = OnlineFenrir(networks=NETWORKS)
        for states, when in acked:
            oracle.ingest(states, when)

        restarted = serve_subprocess(data_dir)
        try:
            line = restarted.stdout.readline().decode()
            host, _, port = line.split()[-1].rpartition(":")
            with ServeClient(host=host, port=int(port)) as client:
                summary = client.query("svc")
                timeline = client.timeline("svc")["segments"]
                stats = client.dedup("svc")
        finally:
            restarted.send_signal(signal.SIGTERM)
            try:
                restarted.wait(timeout=10)
            except subprocess.TimeoutExpired:
                restarted.kill()
                restarted.wait(timeout=10)

        assert stats["mode"] == "on"  # dedup mode survived the crash
        assert summary["rounds"] >= len(acked)
        extra = summary["rounds"] - len(acked)
        if extra:
            for states, when in list(self.rounds())[len(acked) : len(acked) + extra]:
                oracle.ingest(states, when)
        expected = [
            {"mode_id": mode_id, "start": start.isoformat(), "end": end.isoformat()}
            for mode_id, start, end in oracle.mode_timeline()
        ]
        assert timeline == expected
