"""Unit tests for the bench-delta gate (benchmarks/check_regression.py).

The script is loaded by file path (benchmarks/ is not a package) and
driven through ``main(argv)``. Focus: the suite helper's shared rules
— missing optional baselines are tolerated with the suite-specific
refresh hint, vanished rows fail, and the classify sections gate in
the right directions (macro-F1 drop fails, latency rise fails).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
)
check_regression = importlib.util.module_from_spec(spec)
assert spec.loader is not None
# @dataclass resolves its field types via sys.modules[cls.__module__],
# so the module must be registered before exec.
sys.modules[spec.name] = check_regression
spec.loader.exec_module(check_regression)


SERVE_DOC = {"throughput_by_batch": {"1": 1000.0, "128": 9000.0}}
CLASSIFY_DOC = {
    "macro_f1": {"holdout": 0.95},
    "classify_latency_ms": {"p50": 0.4, "p99": 1.2},
}


def write(path: Path, document: dict) -> Path:
    path.write_text(json.dumps(document))
    return path


@pytest.fixture
def serve_pair(tmp_path):
    baseline = write(tmp_path / "serve_baseline.json", SERVE_DOC)
    candidate = write(tmp_path / "serve_candidate.json", SERVE_DOC)
    return [str(baseline), str(candidate)]


class TestServeSuite:
    def test_identical_documents_pass(self, serve_pair):
        assert check_regression.main(serve_pair) == 0

    def test_throughput_drop_fails(self, tmp_path, serve_pair):
        slower = dict(SERVE_DOC)
        slower["throughput_by_batch"] = {"1": 1000.0, "128": 4000.0}
        candidate = write(tmp_path / "slower.json", slower)
        argv = [serve_pair[0], str(candidate), "--max-drop", "0.40"]
        assert check_regression.main(argv) == 1

    def test_vanished_row_fails(self, tmp_path, serve_pair):
        partial = {"throughput_by_batch": {"1": 1000.0}}
        candidate = write(tmp_path / "partial.json", partial)
        assert check_regression.main([serve_pair[0], str(candidate)]) == 1


class TestOptionalBaselines:
    def test_missing_classify_baseline_tolerated_with_hint(
        self, tmp_path, serve_pair, capsys
    ):
        candidate = write(tmp_path / "classify.json", CLASSIFY_DOC)
        argv = serve_pair + [
            "--classify-baseline", str(tmp_path / "absent.json"),
            "--classify-candidate", str(candidate),
        ]
        assert check_regression.main(argv) == 0
        out = capsys.readouterr().out
        assert "does not exist; skipping" in out
        assert "bench_classify.py --quick" in out
        assert "git add BENCH_classify.json" in out

    def test_missing_vps_baseline_gets_vps_hint(self, tmp_path, serve_pair, capsys):
        candidate = write(tmp_path / "vps.json", {"ingest_rounds_per_second": {}})
        argv = serve_pair + [
            "--vps-baseline", str(tmp_path / "absent.json"),
            "--vps-candidate", str(candidate),
        ]
        assert check_regression.main(argv) == 0
        out = capsys.readouterr().out
        assert "bench_vps.py --quick" in out
        assert "git add BENCH_vps.json" in out

    def test_baseline_without_candidate_flag_exits(self, tmp_path, serve_pair):
        baseline = write(tmp_path / "classify.json", CLASSIFY_DOC)
        argv = serve_pair + ["--classify-baseline", str(baseline)]
        with pytest.raises(SystemExit):
            check_regression.main(argv)


class TestClassifySuite:
    def run(self, tmp_path, serve_pair, candidate_doc, extra=()):
        baseline = write(tmp_path / "classify_baseline.json", CLASSIFY_DOC)
        candidate = write(tmp_path / "classify_candidate.json", candidate_doc)
        argv = serve_pair + [
            "--classify-baseline", str(baseline),
            "--classify-candidate", str(candidate),
            *extra,
        ]
        return check_regression.main(argv)

    def test_identical_pass(self, tmp_path, serve_pair):
        assert self.run(tmp_path, serve_pair, CLASSIFY_DOC) == 0

    def test_macro_f1_drop_fails(self, tmp_path, serve_pair):
        worse = {**CLASSIFY_DOC, "macro_f1": {"holdout": 0.5}}
        assert self.run(tmp_path, serve_pair, worse) == 1

    def test_latency_rise_fails(self, tmp_path, serve_pair):
        worse = {
            **CLASSIFY_DOC,
            "classify_latency_ms": {"p50": 0.4, "p99": 5.0},
        }
        assert (
            self.run(tmp_path, serve_pair, worse, ["--max-latency-rise", "2.0"]) == 1
        )

    def test_latency_improvement_passes(self, tmp_path, serve_pair):
        better = {
            **CLASSIFY_DOC,
            "macro_f1": {"holdout": 1.0},
            "classify_latency_ms": {"p50": 0.1, "p99": 0.2},
        }
        assert self.run(tmp_path, serve_pair, better) == 0
