"""Unit tests for the stats-layer percentile math.

The original nearest-rank implementation indexed ``int(fraction · n)``
(0-based), which over-reads by one position — the p50 of ``[1, 2]``
came back 2. The correct nearest rank is ``ceil(fraction · n)`` in
1-based terms.
"""

from __future__ import annotations

from repro.serve.metrics import LatencyRecorder, ServerMetrics


class TestPercentile:
    def test_p50_of_two_samples_is_the_lower(self):
        assert LatencyRecorder._percentile([1.0, 2.0], 0.50) == 1.0

    def test_p50_of_odd_sample_is_the_median(self):
        assert LatencyRecorder._percentile([1.0, 2.0, 3.0], 0.50) == 2.0

    def test_known_small_samples(self):
        ordered = [10.0, 20.0, 30.0, 40.0]
        assert LatencyRecorder._percentile(ordered, 0.25) == 10.0
        assert LatencyRecorder._percentile(ordered, 0.50) == 20.0
        assert LatencyRecorder._percentile(ordered, 0.75) == 30.0
        assert LatencyRecorder._percentile(ordered, 1.00) == 40.0

    def test_p99_of_hundred_samples(self):
        ordered = [float(i) for i in range(1, 101)]
        assert LatencyRecorder._percentile(ordered, 0.99) == 99.0
        assert LatencyRecorder._percentile(ordered, 0.50) == 50.0

    def test_single_sample(self):
        assert LatencyRecorder._percentile([5.0], 0.50) == 5.0
        assert LatencyRecorder._percentile([5.0], 0.99) == 5.0

    def test_empty_is_zero(self):
        assert LatencyRecorder._percentile([], 0.50) == 0.0

    def test_zero_fraction_is_minimum(self):
        assert LatencyRecorder._percentile([3.0, 7.0], 0.0) == 3.0


class TestSummary:
    def test_summary_reports_correct_p50(self):
        recorder = LatencyRecorder()
        recorder.observe("ingest", 0.001)
        recorder.observe("ingest", 0.002)
        summary = recorder.summary()
        assert summary["ingest"]["count"] == 2
        assert summary["ingest"]["p50_ms"] == 1.0
        assert summary["ingest"]["max_ms"] == 2.0

    def test_metrics_snapshot_includes_counters(self):
        metrics = ServerMetrics()
        metrics.increment("rounds_ingested", 3)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["rounds_ingested"] == 3
