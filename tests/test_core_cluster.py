"""Tests for from-scratch HAC, validated against scipy as an oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage
from scipy.spatial.distance import squareform

from repro.core.cluster import adaptive_clusters, cut_linkage, hac_linkage


def labels_to_partition(labels) -> set[frozenset[int]]:
    groups: dict[int, set[int]] = {}
    for index, label in enumerate(labels):
        groups.setdefault(int(label), set()).add(index)
    return {frozenset(members) for members in groups.values()}


class TestHacSmall:
    def test_two_points(self):
        distance = np.array([[0.0, 0.4], [0.4, 0.0]])
        result = hac_linkage(distance, "single")
        assert result.merges.shape == (1, 4)
        assert result.merges[0, 2] == pytest.approx(0.4)

    def test_three_points_chain(self):
        # 0-1 close, 2 far from both.
        distance = np.array(
            [
                [0.0, 0.1, 0.9],
                [0.1, 0.0, 0.8],
                [0.9, 0.8, 0.0],
            ]
        )
        result = hac_linkage(distance, "single")
        heights = result.merges[:, 2]
        assert heights[0] == pytest.approx(0.1)
        assert heights[1] == pytest.approx(0.8)  # single linkage: min

    def test_complete_linkage_uses_max(self):
        distance = np.array(
            [
                [0.0, 0.1, 0.9],
                [0.1, 0.0, 0.8],
                [0.9, 0.8, 0.0],
            ]
        )
        result = hac_linkage(distance, "complete")
        assert result.merges[1, 2] == pytest.approx(0.9)

    def test_average_linkage(self):
        distance = np.array(
            [
                [0.0, 0.1, 0.9],
                [0.1, 0.0, 0.8],
                [0.9, 0.8, 0.0],
            ]
        )
        result = hac_linkage(distance, "average")
        assert result.merges[1, 2] == pytest.approx(0.85)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            hac_linkage(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            hac_linkage(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            hac_linkage(np.zeros((0, 0)))

    def test_single_point(self):
        result = hac_linkage(np.zeros((1, 1)))
        assert result.merges.shape == (0, 4)
        assert cut_linkage(result, 0.5).tolist() == [0]

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            hac_linkage(np.zeros((2, 2)), "ward")  # type: ignore[arg-type]


class TestCutLinkage:
    def test_cut_labels_by_first_appearance(self):
        distance = np.array(
            [
                [0.0, 0.9, 0.1],
                [0.9, 0.0, 0.9],
                [0.1, 0.9, 0.0],
            ]
        )
        result = hac_linkage(distance, "single")
        labels = cut_linkage(result, 0.5)
        # points 0 and 2 together; labels renumbered by first appearance.
        assert labels.tolist() == [0, 1, 0]

    def test_cut_zero_threshold_all_singletons(self):
        distance = 1 - np.eye(4)
        result = hac_linkage(distance, "single")
        assert len(set(cut_linkage(result, 0.0).tolist())) == 4

    def test_cut_high_threshold_single_cluster(self):
        distance = 1 - np.eye(4)
        result = hac_linkage(distance, "single")
        assert set(cut_linkage(result, 1.0).tolist()) == {0}


@st.composite
def random_distance_matrix(draw):
    size = draw(st.integers(min_value=2, max_value=12))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    condensed = rng.uniform(0.01, 1.0, size * (size - 1) // 2)
    # Distinct values avoid tie-ordering ambiguity vs scipy.
    condensed = np.unique(condensed)
    while len(condensed) < size * (size - 1) // 2:
        condensed = np.append(condensed, condensed[-1] * 1.01 + 0.001)
    return squareform(condensed[: size * (size - 1) // 2])


class TestAgainstScipy:
    @settings(max_examples=30, deadline=None)
    @given(random_distance_matrix(), st.sampled_from(["single", "complete", "average"]))
    def test_partitions_match_scipy(self, distance, method):
        ours = hac_linkage(distance, method)
        theirs = scipy_linkage(squareform(distance, checks=False), method=method)
        assert np.allclose(np.sort(ours.merges[:, 2]), np.sort(theirs[:, 2]), atol=1e-9)
        for threshold in [0.2, 0.5, 0.8]:
            ours_labels = cut_linkage(ours, threshold)
            theirs_labels = fcluster(theirs, threshold, criterion="distance")
            assert labels_to_partition(ours_labels) == labels_to_partition(theirs_labels)


class TestAdaptive:
    def test_selects_first_qualifying_threshold(self):
        # Two tight pairs far apart: at low threshold, 2 clusters of 2.
        distance = np.array(
            [
                [0.0, 0.05, 0.9, 0.9],
                [0.05, 0.0, 0.9, 0.9],
                [0.9, 0.9, 0.0, 0.05],
                [0.9, 0.9, 0.05, 0.0],
            ]
        )
        result = adaptive_clusters(distance)
        assert result.num_clusters == 2
        assert result.threshold == pytest.approx(0.05, abs=0.011)

    def test_singletons_push_threshold_up(self):
        # A lone outlier forces merging until min_cluster_size holds.
        distance = np.array(
            [
                [0.0, 0.05, 0.5],
                [0.05, 0.0, 0.5],
                [0.5, 0.5, 0.0],
            ]
        )
        result = adaptive_clusters(distance)
        assert result.num_clusters == 1
        assert result.threshold >= 0.5

    def test_max_clusters_bound(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, 40)
        distance = np.abs(points[:, None] - points[None, :])
        result = adaptive_clusters(distance, max_clusters=5)
        assert result.num_clusters < 5

    def test_single_observation(self):
        result = adaptive_clusters(np.zeros((1, 1)))
        assert result.num_clusters == 1

    def test_reuses_precomputed_linkage(self):
        distance = 1 - np.eye(3)
        precomputed = hac_linkage(distance, "single")
        result = adaptive_clusters(distance, linkage=precomputed)
        assert result.linkage is precomputed
