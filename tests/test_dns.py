"""Tests for the DNS substrate: wire format, EDNS-CS, CHAOS, resolver."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.chaos import HOSTNAME_BIND, IdentifierMap, make_chaos_query, make_chaos_response
from repro.dns.edns import ClientSubnet, add_client_subnet, extract_client_subnet, make_opt_record
from repro.dns.message import (
    CLASS_CHAOS,
    CLASS_IN,
    DnsError,
    DnsMessage,
    Question,
    RCODE_NOERROR,
    ResourceRecord,
    TYPE_A,
    TYPE_TXT,
    decode_name,
    encode_name,
)
from repro.dns.resolver import RecursiveResolver
from repro.net.addr import IPv4Prefix, parse_prefix


class TestNames:
    def test_encode_simple(self):
        assert encode_name("a.bc") == b"\x01a\x02bc\x00"

    def test_encode_root(self):
        assert encode_name("") == b"\x00"
        assert encode_name(".") == b"\x00"

    def test_round_trip(self):
        data = encode_name("www.example.com")
        name, offset = decode_name(data, 0)
        assert name == "www.example.com"
        assert offset == len(data)

    def test_rejects_long_label(self):
        with pytest.raises(DnsError):
            encode_name("a" * 64 + ".com")

    def test_rejects_empty_label(self):
        with pytest.raises(DnsError):
            encode_name("a..b")

    def test_compression_pointer(self):
        # "example.com" at offset 0, then a pointer to it.
        base = encode_name("example.com")
        data = base + b"\x03www" + b"\xc0\x00"
        name, offset = decode_name(data, len(base))
        assert name == "www.example.com"
        assert offset == len(data)

    def test_compression_loop_detected(self):
        data = b"\xc0\x00"
        with pytest.raises(DnsError):
            decode_name(data, 0)

    def test_truncated_name(self):
        with pytest.raises(DnsError):
            decode_name(b"\x05ab", 0)

    name_strategy = st.lists(
        st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=20),
        min_size=0,
        max_size=4,
    ).map(".".join)

    @given(name_strategy)
    def test_name_round_trip_property(self, name):
        data = encode_name(name)
        decoded, _ = decode_name(data, 0)
        assert decoded == name.rstrip(".")


class TestMessages:
    def test_query_round_trip(self):
        message = DnsMessage(msg_id=0x1234)
        message.questions.append(Question("example.com", TYPE_A))
        decoded = DnsMessage.decode(message.encode())
        assert decoded.msg_id == 0x1234
        assert not decoded.is_response
        assert decoded.recursion_desired
        assert decoded.questions == [Question("example.com", TYPE_A, CLASS_IN)]

    def test_response_round_trip_with_records(self):
        message = DnsMessage(msg_id=7, is_response=True, rcode=RCODE_NOERROR)
        message.questions.append(Question("example.com", TYPE_A))
        message.answers.append(ResourceRecord.a("example.com", 0xC0000201, ttl=300))
        message.additionals.append(make_opt_record())
        decoded = DnsMessage.decode(message.encode())
        assert decoded.is_response
        assert decoded.answers[0].a_address() == 0xC0000201
        assert decoded.answers[0].ttl == 300
        assert len(decoded.additionals) == 1

    def test_truncated_message_rejected(self):
        with pytest.raises(DnsError):
            DnsMessage.decode(b"\x00" * 5)

    def test_txt_round_trip(self):
        record = ResourceRecord.txt("hostname.bind", "b1-lax", rclass=CLASS_CHAOS)
        assert record.txt_strings() == ["b1-lax"]

    def test_txt_too_long_rejected(self):
        with pytest.raises(DnsError):
            ResourceRecord.txt("x", "a" * 300)

    def test_first_txt(self):
        message = DnsMessage(is_response=True)
        message.answers.append(ResourceRecord.txt("x", "hello"))
        assert message.first_txt() == "hello"
        assert DnsMessage().first_txt() is None

    def test_a_record_validation(self):
        record = ResourceRecord.txt("x", "not-an-a")
        with pytest.raises(DnsError):
            record.a_address()


class TestEdns:
    def test_client_subnet_round_trip(self):
        ecs = ClientSubnet(parse_prefix("198.51.100.0/24"), scope_length=24)
        decoded = ClientSubnet.decode(ecs.encode()[4:])  # strip option header
        assert decoded == ecs

    def test_add_and_extract(self):
        message = DnsMessage()
        message.questions.append(Question("example.com", TYPE_A))
        add_client_subnet(message, parse_prefix("10.0.0.0/8"))
        wire = DnsMessage.decode(message.encode())
        ecs = extract_client_subnet(wire)
        assert ecs is not None
        assert str(ecs.prefix) == "10.0.0.0/8"

    def test_add_replaces_existing_opt(self):
        message = DnsMessage()
        add_client_subnet(message, parse_prefix("10.0.0.0/8"))
        add_client_subnet(message, parse_prefix("11.0.0.0/8"))
        assert len(message.additionals) == 1
        ecs = extract_client_subnet(message)
        assert str(ecs.prefix) == "11.0.0.0/8"

    def test_extract_without_opt(self):
        assert extract_client_subnet(DnsMessage()) is None

    def test_decode_rejects_non_ipv4_family(self):
        payload = b"\x00\x02\x18\x00" + b"\x00" * 3
        with pytest.raises(DnsError):
            ClientSubnet.decode(payload)

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=32),
    )
    def test_round_trip_property(self, network, length):
        prefix = IPv4Prefix.supernet_of(network, length)
        ecs = ClientSubnet(prefix)
        decoded = ClientSubnet.decode(ecs.encode()[4:])
        assert decoded.prefix == prefix


class TestChaos:
    def test_query_shape(self):
        query = make_chaos_query(msg_id=9)
        assert query.questions[0] == Question(HOSTNAME_BIND, TYPE_TXT, CLASS_CHAOS)

    def test_response_carries_identifier(self):
        query = make_chaos_query()
        response = make_chaos_response(query, "b2-ams")
        decoded = DnsMessage.decode(response.encode())
        assert decoded.first_txt() == "b2-ams"

    def test_identifier_map_convention(self):
        mapping = IdentifierMap.for_sites({"LAX", "AMS"})
        assert mapping.site_of("b1-lax") == "LAX"
        assert mapping.site_of("ns2-ams.example") == "AMS"
        assert mapping.site_of("b1-sin") is None  # not a known site
        assert mapping.site_of("garbage!!") is None

    def test_identifier_map_exact_overrides(self):
        mapping = IdentifierMap(known_sites={"LAX"}, exact={"weird-id": "LAX"})
        assert mapping.site_of("WEIRD-ID") == "LAX"

    def test_identifier_map_open_sites(self):
        mapping = IdentifierMap()
        assert mapping.site_of("b1-anything") == "ANYTHING"


class TestResolver:
    def make_authoritative(self, answers_log=None):
        def handle(question, ecs):
            if answers_log is not None:
                answers_log.append(ecs.prefix if ecs else None)
            response = DnsMessage(is_response=True)
            response.questions = [question]
            address = (ecs.prefix.network | 1) if ecs else 1
            response.answers.append(ResourceRecord.a(question.name, address))
            if ecs is not None:
                response.additionals.append(
                    make_opt_record(ClientSubnet(ecs.prefix, 24))
                )
            return response

        return handle

    def test_passthrough_forwards_client_prefix(self):
        log = []
        resolver = RecursiveResolver(self.make_authoritative(log))
        query = RecursiveResolver.make_query("x.com", TYPE_A, parse_prefix("10.9.8.0/24"))
        response = resolver.resolve(query)
        assert log == [parse_prefix("10.9.8.0/24")]
        assert response.answers[0].a_address() == parse_prefix("10.9.8.0/24").network | 1

    def test_no_passthrough_uses_resolver_prefix(self):
        log = []
        resolver = RecursiveResolver(self.make_authoritative(log), ecs_passthrough=False)
        query = RecursiveResolver.make_query("x.com", TYPE_A, parse_prefix("10.9.8.0/24"))
        resolver.resolve(query)
        assert log == [resolver.resolver_prefix]

    def test_scope_aware_cache(self):
        log = []
        resolver = RecursiveResolver(self.make_authoritative(log))
        first = RecursiveResolver.make_query("x.com", TYPE_A, parse_prefix("10.9.8.0/24"))
        resolver.resolve(first)
        # Same /24: served from cache.
        resolver.resolve(first)
        assert resolver.cache_hits == 1
        # Different /24: forwarded again.
        other = RecursiveResolver.make_query("x.com", TYPE_A, parse_prefix("10.9.9.0/24"))
        resolver.resolve(other)
        assert len(log) == 2

    def test_clear_cache(self):
        resolver = RecursiveResolver(self.make_authoritative())
        query = RecursiveResolver.make_query("x.com", TYPE_A, parse_prefix("10.0.0.0/24"))
        resolver.resolve(query)
        resolver.clear_cache()
        resolver.resolve(query)
        assert resolver.queries_forwarded == 2

    def test_empty_question_servfail(self):
        resolver = RecursiveResolver(self.make_authoritative())
        response = resolver.resolve(DnsMessage())
        assert response.rcode != RCODE_NOERROR


class TestNameCompression:
    def build_response(self):
        message = DnsMessage(msg_id=5, is_response=True)
        message.questions.append(Question("www.example.com", TYPE_A))
        message.answers.append(ResourceRecord.a("www.example.com", 0x01020304))
        message.answers.append(ResourceRecord.a("mail.example.com", 0x01020305))
        message.additionals.append(ResourceRecord.txt("example.com", "hello"))
        return message

    def test_compressed_round_trip(self):
        message = self.build_response()
        wire = message.encode(compress=True)
        decoded = DnsMessage.decode(wire)
        assert decoded.questions == message.questions
        assert [r.name for r in decoded.answers] == [
            "www.example.com",
            "mail.example.com",
        ]
        assert decoded.additionals[0].name == "example.com"

    def test_compression_shrinks_message(self):
        message = self.build_response()
        assert len(message.encode(compress=True)) < len(message.encode())

    def test_repeated_name_becomes_pointer(self):
        message = DnsMessage(is_response=True)
        message.questions.append(Question("a.very.long.domain.example", TYPE_A))
        message.answers.append(
            ResourceRecord.a("a.very.long.domain.example", 1)
        )
        wire = message.encode(compress=True)
        # The answer's name is a single 2-byte pointer to the question.
        assert wire.count(b"\x01a\x04very") == 1

    def test_case_insensitive_suffix_sharing(self):
        message = DnsMessage(is_response=True)
        message.questions.append(Question("WWW.Example.COM", TYPE_A))
        message.answers.append(ResourceRecord.a("www.example.com", 1))
        decoded = DnsMessage.decode(message.encode(compress=True))
        assert decoded.answers[0].name.lower() == "www.example.com"

    @given(
        st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12),
            min_size=1,
            max_size=3,
        ).map(".".join),
        st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8),
            min_size=0,
            max_size=3,
        ),
    )
    def test_compressed_round_trip_property(self, base, subs):
        message = DnsMessage(is_response=True)
        message.questions.append(Question(base, TYPE_A))
        for sub in subs:
            message.answers.append(ResourceRecord.a(f"{sub}.{base}", 7))
        decoded = DnsMessage.decode(message.encode(compress=True))
        assert decoded.questions[0].name == base
        assert [r.name for r in decoded.answers] == [f"{s}.{base}" for s in subs]
