"""Tests for the radix trie, including an LPM-vs-linear-scan oracle."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import IPv4Prefix, parse_address, parse_prefix
from repro.net.trie import PrefixTrie


def make_trie(entries: dict[str, str]) -> PrefixTrie[str]:
    trie: PrefixTrie[str] = PrefixTrie()
    for prefix, value in entries.items():
        trie.insert(parse_prefix(prefix), value)
    return trie


class TestBasics:
    def test_insert_and_exact(self):
        trie = make_trie({"10.0.0.0/8": "a"})
        assert trie.exact(parse_prefix("10.0.0.0/8")) == "a"
        assert trie.exact(parse_prefix("10.0.0.0/16")) is None

    def test_len_counts_unique_prefixes(self):
        trie = make_trie({"10.0.0.0/8": "a", "10.1.0.0/16": "b"})
        assert len(trie) == 2
        trie.insert(parse_prefix("10.0.0.0/8"), "replaced")
        assert len(trie) == 2
        assert trie.exact(parse_prefix("10.0.0.0/8")) == "replaced"

    def test_remove(self):
        trie = make_trie({"10.0.0.0/8": "a"})
        assert trie.remove(parse_prefix("10.0.0.0/8"))
        assert not trie.remove(parse_prefix("10.0.0.0/8"))
        assert trie.lookup(parse_address("10.0.0.1")) is None
        assert len(trie) == 0

    def test_longest_match_prefers_specific(self):
        trie = make_trie({"10.0.0.0/8": "big", "10.1.0.0/16": "small"})
        assert trie.lookup(parse_address("10.1.2.3")) == "small"
        assert trie.lookup(parse_address("10.2.0.1")) == "big"
        assert trie.lookup(parse_address("11.0.0.1")) is None

    def test_longest_match_returns_prefix(self):
        trie = make_trie({"10.1.0.0/16": "x"})
        match = trie.longest_match(parse_address("10.1.2.3"))
        assert match is not None
        prefix, value = match
        assert str(prefix) == "10.1.0.0/16"
        assert value == "x"

    def test_default_route(self):
        trie = make_trie({"0.0.0.0/0": "default", "10.0.0.0/8": "ten"})
        assert trie.lookup(parse_address("8.8.8.8")) == "default"
        assert trie.lookup(parse_address("10.0.0.1")) == "ten"

    def test_covering(self):
        trie = make_trie({"10.0.0.0/8": "big"})
        hit = trie.covering(parse_prefix("10.5.0.0/16"))
        assert hit is not None and hit[1] == "big"
        assert trie.covering(parse_prefix("11.0.0.0/16")) is None

    def test_covering_requires_containment(self):
        trie = make_trie({"10.5.0.0/16": "x"})
        # /8 query is wider than the stored /16 → nothing covers it.
        assert trie.covering(parse_prefix("10.0.0.0/8")) is None

    def test_items_in_address_order(self):
        trie = make_trie({"10.0.0.0/8": "a", "9.0.0.0/8": "b", "10.1.0.0/16": "c"})
        keys = [str(prefix) for prefix, _value in trie.items()]
        assert keys == ["9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16"]

    def test_contains(self):
        trie = make_trie({"10.0.0.0/8": "a"})
        assert parse_prefix("10.0.0.0/8") in trie
        assert parse_prefix("10.0.0.0/16") not in trie
        assert "not-a-prefix" not in trie

    def test_none_values_are_storable(self):
        trie: PrefixTrie[None] = PrefixTrie()
        trie.insert(parse_prefix("10.0.0.0/8"), None)
        assert parse_prefix("10.0.0.0/8") in trie


prefix_strategy = st.builds(
    lambda value, length: IPv4Prefix.supernet_of(value, length),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=32),
)


class TestAgainstLinearScan:
    @given(
        st.dictionaries(prefix_strategy, st.integers(), max_size=40),
        st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=20),
    )
    def test_lookup_matches_linear_reference(self, entries, queries):
        trie: PrefixTrie[int] = PrefixTrie()
        for prefix, value in entries.items():
            trie.insert(prefix, value)
        for query in queries:
            matching = [p for p in entries if query in p]
            if matching:
                best = max(matching, key=lambda p: p.length)
                assert trie.lookup(query) == entries[best]
            else:
                assert trie.lookup(query) is None

    @given(st.dictionaries(prefix_strategy, st.integers(), max_size=30))
    def test_items_round_trip(self, entries):
        trie: PrefixTrie[int] = PrefixTrie()
        for prefix, value in entries.items():
            trie.insert(prefix, value)
        assert dict(trie.items()) == entries
        assert len(trie) == len(entries)
