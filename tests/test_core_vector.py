"""Tests for routing vectors and the state catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vector import (
    ERROR,
    OTHER,
    SPECIAL_STATES,
    UNKNOWN,
    RoutingVector,
    StateCatalog,
)


class TestStateCatalog:
    def test_specials_have_fixed_codes(self):
        catalog = StateCatalog()
        assert catalog.code(UNKNOWN) == 0
        assert catalog.code(ERROR) == 1
        assert catalog.code(OTHER) == 2

    def test_new_labels_get_sequential_codes(self):
        catalog = StateCatalog()
        assert catalog.code("LAX") == 3
        assert catalog.code("AMS") == 4
        assert catalog.code("LAX") == 3  # idempotent

    def test_lookup_does_not_assign(self):
        catalog = StateCatalog()
        assert catalog.lookup("LAX") is None
        assert len(catalog) == 3

    def test_label_round_trip(self):
        catalog = StateCatalog(["LAX"])
        assert catalog.label(catalog.code("LAX")) == "LAX"

    def test_site_labels_excludes_specials(self):
        catalog = StateCatalog(["LAX", "AMS"])
        assert catalog.site_labels == ("LAX", "AMS")
        assert set(SPECIAL_STATES) & set(catalog.site_labels) == set()

    def test_contains(self):
        catalog = StateCatalog(["LAX"])
        assert "LAX" in catalog
        assert UNKNOWN in catalog
        assert "AMS" not in catalog


class TestRoutingVector:
    def test_from_mapping_sorted_networks(self):
        vector = RoutingVector.from_mapping({"b": "LAX", "a": "AMS"})
        assert vector.networks == ("a", "b")
        assert vector.state_of("a") == "AMS"

    def test_from_mapping_explicit_networks_fills_unknown(self):
        vector = RoutingVector.from_mapping({"a": "LAX"}, networks=["a", "b"])
        assert vector.state_of("b") == UNKNOWN
        assert vector.fraction_unknown() == 0.5

    def test_to_mapping_round_trip(self):
        mapping = {"a": "LAX", "b": UNKNOWN, "c": ERROR}
        vector = RoutingVector.from_mapping(mapping)
        assert vector.to_mapping() == mapping

    def test_shape_validation(self):
        catalog = StateCatalog(["LAX"])
        with pytest.raises(ValueError):
            RoutingVector(("a", "b"), np.array([0]), catalog)

    def test_code_range_validation(self):
        catalog = StateCatalog()
        with pytest.raises(ValueError):
            RoutingVector(("a",), np.array([99]), catalog)

    def test_known_mask(self):
        vector = RoutingVector.from_mapping({"a": "LAX", "b": UNKNOWN, "c": ERROR})
        assert vector.known_mask.tolist() == [True, False, True]

    def test_one_hot_shape_and_rows(self):
        vector = RoutingVector.from_mapping({"a": "LAX", "b": "AMS"})
        matrix = vector.one_hot()
        assert matrix.shape == (2, len(vector.catalog))
        assert matrix.sum() == 2
        assert (matrix.sum(axis=1) == 1).all()

    def test_aggregate_counts(self):
        vector = RoutingVector.from_mapping(
            {"a": "LAX", "b": "LAX", "c": "AMS", "d": UNKNOWN}
        )
        assert vector.aggregate() == {"LAX": 2.0, "AMS": 1.0, UNKNOWN: 1.0}

    def test_aggregate_weighted(self):
        vector = RoutingVector.from_mapping({"a": "LAX", "b": "AMS"})
        weighted = vector.aggregate(weights=np.array([10.0, 1.0]))
        assert weighted == {"LAX": 10.0, "AMS": 1.0}

    def test_aggregate_weight_shape_checked(self):
        vector = RoutingVector.from_mapping({"a": "LAX"})
        with pytest.raises(ValueError):
            vector.aggregate(weights=np.array([1.0, 2.0]))

    def test_replace_codes(self):
        vector = RoutingVector.from_mapping({"a": "LAX", "b": "AMS"})
        swapped = vector.replace_codes(vector.codes[::-1].copy())
        assert swapped.state_of("a") == "AMS"
        assert vector.state_of("a") == "LAX"  # original untouched

    def test_fraction_unknown_empty(self):
        vector = RoutingVector.from_mapping({})
        assert vector.fraction_unknown() == 0.0

    def test_catalog_shared_across_vectors(self):
        catalog = StateCatalog()
        a = RoutingVector.from_mapping({"x": "LAX"}, catalog=catalog)
        b = RoutingVector.from_mapping({"x": "AMS"}, catalog=catalog)
        assert a.catalog is b.catalog
        assert catalog.lookup("LAX") is not None and catalog.lookup("AMS") is not None
