"""Tests for country-level transit analysis."""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.bgp.events import LinkOutage, RoutingScenario
from repro.bgp.policy import Announcement
from repro.controlplane.collector import RouteCollector
from repro.controlplane.country import (
    BorderCrossing,
    country_crossings,
    country_series,
    transit_diversity,
)


class TestCrossings:
    def test_first_border_crossing_found(self):
        paths = {5: (5, 4, 3, 2, 1)}
        crossings = country_crossings(paths, country_ases={2, 1})
        assert crossings == [BorderCrossing(5, 3, 2)]

    def test_internal_vantage_skipped(self):
        paths = {2: (2, 1)}
        assert country_crossings(paths, {2, 1}) == []

    def test_path_missing_country_skipped(self):
        paths = {5: (5, 4, 3)}
        assert country_crossings(paths, {9}) == []

    def test_only_first_crossing_counts(self):
        # Path enters, exits, re-enters: only the first crossing counts.
        paths = {5: (5, 1, 7, 1)}
        crossings = country_crossings(paths, {1})
        assert len(crossings) == 1
        assert crossings[0].outside_asn == 5


class TestDiversity:
    def test_empty(self):
        assert transit_diversity([]) == 0.0

    def test_single_transit(self):
        crossings = [BorderCrossing(v, 100, 1) for v in range(5)]
        assert transit_diversity(crossings) == pytest.approx(1.0)

    def test_two_equal_transits(self):
        crossings = [BorderCrossing(v, 100 + v % 2, 1) for v in range(10)]
        assert transit_diversity(crossings) == pytest.approx(2.0)

    def test_skew_reduces_diversity(self):
        balanced = [BorderCrossing(v, 100 + v % 2, 1) for v in range(10)]
        skewed = [BorderCrossing(v, 100 if v else 101, 1) for v in range(10)]
        assert transit_diversity(skewed) < transit_diversity(balanced)


class TestCountrySeries:
    @pytest.fixture
    def setup(self, small_topology, t0):
        # "Country" = R3 + S3 (ASes 13, 23); origin inside it.
        scenario = RoutingScenario(
            small_topology, [Announcement(origin=23, label="X")]
        )
        collector = RouteCollector(scenario, vantages=[21, 22, 11, 12, 23])
        return scenario, collector

    def test_series_shape(self, setup, t0):
        _scenario, collector = setup
        series = country_series(collector, {13, 23}, [t0])
        # Internal vantage 23 excluded from the universe.
        assert "as23" not in series.networks
        assert len(series.networks) == 4
        states = set(series[0].to_mapping().values())
        assert states == {"AS2"}  # all ingress rides T2 into R3

    def test_outage_shifts_border(self, setup, t0):
        scenario, collector = setup
        scenario.add_event(
            LinkOutage(2, 13, t0 + timedelta(days=1), t0 + timedelta(days=2))
        )
        times = [t0, t0 + timedelta(days=1)]
        series = country_series(collector, {13, 23}, times)
        before = set(series[0].to_mapping().values())
        during = set(series[1].to_mapping().values())
        assert before != during  # country unreachable or rerouted
        from repro.core import phi

        assert phi(series[0], series[1]) < 1.0

    def test_names_applied(self, setup, t0):
        _scenario, collector = setup
        series = country_series(
            collector, {13, 23}, [t0], as_names={2: "TRANSIT-2"}
        )
        assert set(series[0].to_mapping().values()) == {"TRANSIT-2"}

    def test_diversity_on_simulated_country(self, setup, t0):
        _scenario, collector = setup
        crossings = country_crossings(collector.paths_at(t0), {13, 23})
        assert transit_diversity(crossings) == pytest.approx(1.0)  # single transit!
