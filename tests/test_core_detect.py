"""Tests for event detection and ground-truth validation (Table 4 logic)."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.detect import (
    DetectedEvent,
    EventGroup,
    GroundTruthEntry,
    MaintenanceKind,
    detect_events,
    group_entries,
    step_changes,
    validate_events,
)
from repro.core.series import VectorSeries
from repro.core.vector import StateCatalog

T0 = datetime(2023, 3, 1)


def series_from(maps, t0=T0, step=timedelta(minutes=4)):
    networks = sorted(maps[0])
    series = VectorSeries(networks, StateCatalog())
    for index, mapping in enumerate(maps):
        series.append_mapping(mapping, t0 + step * index)
    return series


def stable(n):
    return [{"x": "A", "y": "B", "z": "A", "w": "B"}] * n


def shifted(n):
    return [{"x": "B", "y": "B", "z": "A", "w": "B"}] * n  # one network moved


class TestStepChanges:
    def test_quiescent_is_zero(self):
        changes = step_changes(series_from(stable(4)))
        assert changes.tolist() == [0.0, 0.0, 0.0]

    def test_change_magnitude(self):
        changes = step_changes(series_from(stable(2) + shifted(2)))
        assert changes.tolist() == [0.0, 0.25, 0.0]

    def test_empty_for_single_observation(self):
        assert len(step_changes(series_from(stable(1)))) == 0


class TestDetectEvents:
    def test_single_event(self):
        events = detect_events(series_from(stable(3) + shifted(3)), threshold=0.1)
        assert len(events) == 1
        event = events[0]
        assert event.start_index == 2
        assert event.start == T0 + timedelta(minutes=8)
        assert event.max_change == pytest.approx(0.25)

    def test_no_events_below_threshold(self):
        events = detect_events(series_from(stable(3) + shifted(3)), threshold=0.5)
        assert events == []

    def test_merge_gap_joins_drain_and_revert(self):
        maps = stable(3) + shifted(2) + stable(3)
        events = detect_events(series_from(maps), threshold=0.1, merge_gap=3)
        assert len(events) == 1
        assert events[0].end_index >= 5

    def test_merge_gap_one_splits_separated_events(self):
        maps = stable(2) + shifted(2) + stable(2) + shifted(2)
        # changes at steps 1->2... indexes: 1, 3 flagged? steps: 1 (stable->shift),
        # 3 (shift->stable), 5 (stable->shift) with quiet gaps between.
        events = detect_events(series_from(maps), threshold=0.1, merge_gap=1)
        assert len(events) >= 2

    def test_event_at_series_end(self):
        maps = stable(3) + shifted(1)
        events = detect_events(series_from(maps), threshold=0.1)
        assert len(events) == 1
        assert events[0].end_index == 3

    def test_adaptive_threshold_flags_outlier(self):
        maps = stable(20) + shifted(20)
        events = detect_events(series_from(maps))  # adaptive
        assert len(events) == 1

    def test_overlaps(self):
        event = DetectedEvent(T0, T0 + timedelta(minutes=10), 0, 1, 0.5)
        assert event.overlaps(T0 + timedelta(minutes=5), T0 + timedelta(minutes=20))
        assert not event.overlaps(T0 + timedelta(minutes=11), T0 + timedelta(minutes=20))


class TestGrouping:
    def test_groups_by_operator_within_window(self):
        entries = [
            GroundTruthEntry(T0, "alice", MaintenanceKind.INTERNAL),
            GroundTruthEntry(T0 + timedelta(minutes=5), "alice", MaintenanceKind.SITE_DRAIN),
            GroundTruthEntry(T0 + timedelta(minutes=5), "bob", MaintenanceKind.INTERNAL),
            GroundTruthEntry(T0 + timedelta(minutes=30), "alice", MaintenanceKind.INTERNAL),
        ]
        groups = group_entries(entries)
        assert len(groups) == 3
        sizes = sorted(len(g.entries) for g in groups)
        assert sizes == [1, 1, 2]

    def test_chained_grouping(self):
        # Entries 8 minutes apart chain into one group even past 10 total.
        entries = [
            GroundTruthEntry(T0 + timedelta(minutes=8 * i), "alice", MaintenanceKind.INTERNAL)
            for i in range(4)
        ]
        groups = group_entries(entries)
        assert len(groups) == 1
        assert groups[0].end - groups[0].start == timedelta(minutes=24)

    def test_group_external_if_any_member_external(self):
        group = EventGroup(
            [
                GroundTruthEntry(T0, "a", MaintenanceKind.INTERNAL),
                GroundTruthEntry(T0, "a", MaintenanceKind.SITE_DRAIN),
            ]
        )
        assert group.external
        assert MaintenanceKind.SITE_DRAIN in group.kinds

    def test_kind_external_flags(self):
        assert MaintenanceKind.SITE_DRAIN.external
        assert MaintenanceKind.TRAFFIC_ENGINEERING.external
        assert not MaintenanceKind.INTERNAL.external


class TestValidation:
    def make_group(self, when, kind, operator="op"):
        return EventGroup([GroundTruthEntry(when, operator, kind)])

    def make_event(self, when):
        return DetectedEvent(when, when + timedelta(minutes=4), 0, 1, 0.5)

    def test_confusion_matrix(self):
        groups = [
            self.make_group(T0, MaintenanceKind.SITE_DRAIN),  # detected -> TP
            self.make_group(T0 + timedelta(hours=2), MaintenanceKind.SITE_DRAIN),  # missed -> FN
            self.make_group(T0 + timedelta(hours=4), MaintenanceKind.INTERNAL),  # detected -> FP
            self.make_group(T0 + timedelta(hours=6), MaintenanceKind.INTERNAL),  # quiet -> TN
        ]
        detected = [
            self.make_event(T0),
            self.make_event(T0 + timedelta(hours=4)),
            self.make_event(T0 + timedelta(hours=9)),  # matches nothing
        ]
        report = validate_events(detected, groups)
        assert report.true_positive == 1
        assert report.false_negative == 1
        assert report.false_positive == 1
        assert report.true_negative == 1
        assert report.unmatched_detections == 1
        assert report.recall == 0.5
        assert report.precision == 0.5
        assert report.accuracy == 0.5
        assert len(report.extra_events) == 1

    def test_tolerance_widens_matching(self):
        groups = [self.make_group(T0, MaintenanceKind.SITE_DRAIN)]
        detected = [self.make_event(T0 + timedelta(minutes=15))]
        strict = validate_events(detected, groups, tolerance=timedelta(minutes=5))
        assert strict.true_positive == 0
        loose = validate_events(detected, groups, tolerance=timedelta(minutes=20))
        assert loose.true_positive == 1

    def test_metrics_nan_when_empty(self):
        report = validate_events([], [])
        assert np.isnan(report.recall)
        assert np.isnan(report.accuracy)

    def test_perfect_recall_report(self):
        groups = [self.make_group(T0, MaintenanceKind.SITE_DRAIN)]
        report = validate_events([self.make_event(T0)], groups)
        assert report.recall == 1.0
        assert report.precision == 1.0
        assert report.matched_external == groups
        assert report.missed_external == []
