"""Tests for IPv4 address and prefix primitives."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import (
    AddressError,
    IPv4Address,
    IPv4Prefix,
    parse_address,
    parse_prefix,
)


class TestIPv4Address:
    def test_parse_and_format(self):
        addr = parse_address("192.0.2.1")
        assert str(addr) == "192.0.2.1"
        assert int(addr) == (192 << 24) | (2 << 8) | 1

    def test_zero_and_max(self):
        assert str(IPv4Address(0)) == "0.0.0.0"
        assert str(IPv4Address(0xFFFFFFFF)) == "255.255.255.255"

    @pytest.mark.parametrize(
        "bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", "-1.0.0.0"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_address(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)
        with pytest.raises(AddressError):
            IPv4Address(-1)

    def test_ordering_matches_numeric(self):
        assert parse_address("1.0.0.0") < parse_address("2.0.0.0")
        assert parse_address("10.0.0.255") < parse_address("10.0.1.0")

    def test_addition(self):
        assert str(parse_address("10.0.0.1") + 255) == "10.0.1.0"

    @pytest.mark.parametrize(
        "text,private",
        [
            ("10.0.0.1", True),
            ("172.16.0.1", True),
            ("172.31.255.255", True),
            ("172.32.0.0", False),
            ("192.168.1.1", True),
            ("192.169.0.0", False),
            ("8.8.8.8", False),
        ],
    )
    def test_is_private(self, text, private):
        assert parse_address(text).is_private is private

    def test_is_loopback(self):
        assert parse_address("127.0.0.1").is_loopback
        assert not parse_address("128.0.0.1").is_loopback

    def test_block24(self):
        assert str(parse_address("198.51.100.77").block24()) == "198.51.100.0/24"

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_string_round_trip(self, value):
        addr = IPv4Address(value)
        assert parse_address(str(addr)) == addr


class TestIPv4Prefix:
    def test_parse_and_format(self):
        prefix = parse_prefix("198.51.100.0/24")
        assert str(prefix) == "198.51.100.0/24"
        assert prefix.length == 24

    def test_rejects_host_bits(self):
        with pytest.raises(AddressError):
            parse_prefix("198.51.100.1/24")

    @pytest.mark.parametrize("bad", ["1.2.3.0", "1.2.3.0/33", "1.2.3.0/-1", "1.2.3.0/x"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_prefix(bad)

    def test_contains_address(self):
        prefix = parse_prefix("10.0.0.0/8")
        assert parse_address("10.255.0.1") in prefix
        assert parse_address("11.0.0.0") not in prefix

    def test_contains_prefix(self):
        outer = parse_prefix("10.0.0.0/8")
        assert parse_prefix("10.1.0.0/16") in outer
        assert outer not in parse_prefix("10.1.0.0/16")
        assert parse_prefix("10.0.0.0/8") in outer  # itself

    def test_contains_int(self):
        assert (10 << 24) in parse_prefix("10.0.0.0/8")

    def test_zero_length_contains_everything(self):
        everything = parse_prefix("0.0.0.0/0")
        assert parse_address("255.255.255.255") in everything
        assert everything.num_addresses == 1 << 32

    def test_supernet_of(self):
        prefix = IPv4Prefix.supernet_of(parse_address("198.51.100.77"), 16)
        assert str(prefix) == "198.51.0.0/16"

    def test_num_blocks24(self):
        assert parse_prefix("10.0.0.0/16").num_blocks24 == 256
        assert parse_prefix("10.0.0.0/24").num_blocks24 == 1
        assert parse_prefix("10.0.0.0/30").num_blocks24 == 1

    def test_blocks24_enumeration(self):
        blocks = list(parse_prefix("10.0.0.0/22").blocks24())
        assert [str(b) for b in blocks] == [
            "10.0.0.0/24",
            "10.0.1.0/24",
            "10.0.2.0/24",
            "10.0.3.0/24",
        ]

    def test_blocks24_of_longer_prefix_is_containing_block(self):
        blocks = list(parse_prefix("10.0.0.128/25").blocks24())
        assert [str(b) for b in blocks] == ["10.0.0.0/24"]

    def test_first_last_address(self):
        prefix = parse_prefix("198.51.100.0/24")
        assert str(prefix.first_address) == "198.51.100.0"
        assert str(prefix.last_address) == "198.51.100.255"

    def test_subnets(self):
        subs = list(parse_prefix("10.0.0.0/23").subnets(24))
        assert [str(s) for s in subs] == ["10.0.0.0/24", "10.0.1.0/24"]

    def test_subnets_rejects_shorter(self):
        with pytest.raises(AddressError):
            list(parse_prefix("10.0.0.0/24").subnets(23))

    def test_overlaps(self):
        a = parse_prefix("10.0.0.0/8")
        b = parse_prefix("10.1.0.0/16")
        c = parse_prefix("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=32),
    )
    def test_supernet_round_trip(self, value, length):
        prefix = IPv4Prefix.supernet_of(value, length)
        assert value in prefix
        assert parse_prefix(str(prefix)) == prefix

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_block24_alignment(self, value):
        block = IPv4Address(value).block24()
        assert block.length == 24
        assert block.network & 0xFF == 0
        assert value in block
