"""Tests for measurement machinery and the latency substrate."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest

from repro.latency.atlasrtt import AtlasRttMeasurement
from repro.latency.model import RttModel
from repro.latency.trinocular import PROBE_INTERVAL, TrinocularProber
from repro.measure.campaign import Campaign, round_times
from repro.measure.loss import GilbertElliott, IidLoss
from repro.net.geo import city


class TestLossModels:
    def test_iid_extremes(self, rng):
        assert not IidLoss(0.0, rng).lost()
        assert IidLoss(1.0, rng).lost()

    def test_iid_rate(self, rng):
        model = IidLoss(0.3, rng)
        losses = sum(model.lost() for _ in range(20000)) / 20000
        assert 0.27 < losses < 0.33

    def test_iid_validation(self, rng):
        with pytest.raises(ValueError):
            IidLoss(1.5, rng)

    def test_gilbert_elliott_bursts(self, rng):
        model = GilbertElliott(p_gb=0.01, p_bg=0.2, rng=rng)
        outcomes = [model.lost() for _ in range(50000)]
        # Count mean burst length of losses; bursts should be > 1 on average.
        bursts, current = [], 0
        for lost in outcomes:
            if lost:
                current += 1
            elif current:
                bursts.append(current)
                current = 0
        assert bursts and sum(bursts) / len(bursts) > 2.0

    def test_gilbert_elliott_stationary_rate(self, rng):
        model = GilbertElliott(p_gb=0.02, p_bg=0.18, rng=rng)
        expected = model.expected_loss
        assert expected == pytest.approx(0.1)
        observed = sum(model.lost() for _ in range(60000)) / 60000
        assert abs(observed - expected) < 0.02

    def test_gilbert_elliott_validation(self, rng):
        with pytest.raises(ValueError):
            GilbertElliott(p_gb=2.0, p_bg=0.1, rng=rng)


class TestCampaign:
    def test_all_answer_without_loss(self):
        campaign = Campaign(probe=lambda t: t * 2)
        results = campaign.run([1, 2, 3])
        assert results == {1: 2, 2: 4, 3: 6}
        assert campaign.stats.response_rate == 1.0
        assert campaign.stats.probes_sent == 3

    def test_unresponsive_targets_absent(self):
        campaign = Campaign(probe=lambda t: None if t == 2 else t)
        results = campaign.run([1, 2, 3])
        assert 2 not in results
        assert campaign.stats.answered == 2

    def test_retries_recover_loss(self, rng):
        # Deterministic alternating loss: first attempt lost, retry OK.
        class AlternatingLoss:
            def __init__(self):
                self.flag = False

            def lost(self):
                self.flag = not self.flag
                return self.flag

        campaign = Campaign(probe=lambda t: t, loss=AlternatingLoss(), retries=1)
        results = campaign.run([1, 2, 3])
        assert len(results) == 3
        assert campaign.stats.probes_sent == 6
        assert campaign.stats.lost == 3

    def test_duration_at_rate(self):
        campaign = Campaign(probe=lambda t: t)
        campaign.run(list(range(550 * 60)))
        assert campaign.stats.duration(550.0) == timedelta(minutes=1)
        with pytest.raises(ValueError):
            campaign.stats.duration(0)

    def test_round_times(self):
        t0 = datetime(2024, 1, 1)
        times = round_times(t0, timedelta(minutes=4), 3)
        assert times == [t0, t0 + timedelta(minutes=4), t0 + timedelta(minutes=8)]
        with pytest.raises(ValueError):
            round_times(t0, timedelta(0), 2)
        with pytest.raises(ValueError):
            round_times(t0, timedelta(minutes=1), -1)


class TestRttModel:
    def test_base_rtt_deterministic(self):
        model = RttModel()
        a = model.base_rtt("n1", city("NYC"), city("LHR"))
        b = model.base_rtt("n1", city("NYC"), city("LHR"))
        assert a == b

    def test_base_rtt_distance_dominates(self):
        model = RttModel(access_ms_min=2.0, access_ms_max=5.0)
        near = model.base_rtt("n1", city("NYC"), city("IAD"))
        far = model.base_rtt("n1", city("NYC"), city("SIN"))
        assert far > near

    def test_jitter_bounded(self, rng):
        model = RttModel(jitter_ms=2.0, rng=rng)
        base = model.base_rtt("n1", city("NYC"), city("LHR"))
        for _ in range(50):
            sample = model.sample("n1", city("NYC"), city("LHR"))
            assert base <= sample <= base + 2.0

    def test_table_skips_unlocated(self):
        model = RttModel()
        table = model.table(
            {"n1": "LAX", "n2": "NOWHERE", "n3": "LAX"},
            {"n1": city("NYC"), "n3": city("ORD")},
            {"LAX": city("LAX")},
        )
        assert sorted(table) == ["n1", "n3"]
        assert all(value > 0 for value in table.values())


class TestTrinocular:
    def test_round_rtts_for_available_blocks(self, rng):
        prober = TrinocularProber(
            site_location=city("LAX"),
            block_locations={"b1": city("NYC"), "b2": city("LHR")},
            rng=rng,
            availability={"b1": 1.0, "b2": 0.0},
        )
        results = prober.round(datetime(2024, 1, 1))
        assert "b1" in results and "b2" not in results
        assert prober.probes_sent > 0

    def test_rounds_between_cadence(self, rng):
        prober = TrinocularProber(
            site_location=city("LAX"),
            block_locations={"b1": city("NYC")},
            rng=rng,
        )
        start = datetime(2024, 1, 1)
        rounds = prober.rounds_between(start, start + timedelta(minutes=60))
        assert len(rounds) == 6  # 11-minute cadence
        assert rounds[1][0] - rounds[0][0] == PROBE_INTERVAL


class TestAtlasRtt:
    def test_vp_rtt_follows_catchment(self, small_topology, t0, rng):
        from repro.anycast.atlas import AtlasVP
        from repro.anycast.service import AnycastService, AnycastSite
        from repro.bgp.events import SiteDrain

        sites = [
            AnycastSite("NEAR", 21, city("ORD")),
            AnycastSite("FAR", 23, city("SIN")),
        ]
        service = AnycastService(small_topology, sites)
        vps = [AtlasVP(0, 11)]
        measurement = AtlasRttMeasurement(
            service, vps, {11: city("ORD")}, rng, model=RttModel(jitter_ms=0)
        )
        before = measurement.measure(t0)["vp0"]
        service.add_event(SiteDrain("NEAR", t0 + timedelta(days=1), t0 + timedelta(days=2)))
        during = measurement.measure(t0 + timedelta(days=1))["vp0"]
        assert during > before * 3  # moved from ORD-local to Singapore

    def test_unreachable_vps_skipped(self, small_topology, t0, rng):
        from repro.anycast.atlas import AtlasVP
        from repro.anycast.service import AnycastService, AnycastSite

        small_topology.remove_link(11, 21)
        service = AnycastService(
            small_topology, [AnycastSite("A", 21, city("ORD"))]
        )
        measurement = AtlasRttMeasurement(
            service, [AtlasVP(0, 13)], {13: city("FRA")}, rng
        )
        assert measurement.measure(t0) == {}
