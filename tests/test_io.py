"""Tests for series serialization and the dataset catalog."""

from __future__ import annotations

import io
from datetime import timedelta

import pytest

from repro.core.series import VectorSeries
from repro.core.vector import UNKNOWN, StateCatalog
from repro.io.catalog import CATALOG, dataset
from repro.io.formats import (
    read_series_csv,
    read_series_jsonl,
    write_series_csv,
    write_series_jsonl,
)


@pytest.fixture
def series(t0):
    series = VectorSeries(["n1", "n2", "n3"], StateCatalog())
    series.append_mapping({"n1": "LAX", "n2": "AMS"}, t0)
    series.append_mapping({"n1": "LAX", "n2": "err", "n3": "other"}, t0 + timedelta(days=1))
    return series


def assert_series_equal(a: VectorSeries, b: VectorSeries) -> None:
    assert a.networks == b.networks
    assert a.times == b.times
    assert [v.to_mapping() for v in a] == [v.to_mapping() for v in b]


class TestJsonl:
    def test_round_trip(self, series):
        buffer = io.StringIO()
        assert write_series_jsonl(series, buffer) == 2
        buffer.seek(0)
        assert_series_equal(read_series_jsonl(buffer), series)

    def test_unknowns_omitted_but_recovered(self, series):
        buffer = io.StringIO()
        write_series_jsonl(series, buffer)
        text = buffer.getvalue()
        assert UNKNOWN not in text
        rebuilt = read_series_jsonl(io.StringIO(text))
        assert rebuilt[0].state_of("n3") == UNKNOWN

    def test_missing_header_rejected(self):
        line = '{"type":"observation","time":"2024-01-01T00:00:00","states":{}}'
        with pytest.raises(ValueError):
            read_series_jsonl(io.StringIO(line + "\n"))

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            read_series_jsonl(io.StringIO(""))

    def test_unknown_line_type_rejected(self):
        with pytest.raises(ValueError):
            read_series_jsonl(io.StringIO('{"type":"mystery"}\n'))


class TestCsv:
    def test_round_trip(self, series):
        buffer = io.StringIO()
        assert write_series_csv(series, buffer) == 2
        buffer.seek(0)
        assert_series_equal(read_series_csv(buffer), series)

    def test_header_validated(self):
        with pytest.raises(ValueError):
            read_series_csv(io.StringIO("wrong,a,b\n"))
        with pytest.raises(ValueError):
            read_series_csv(io.StringIO(""))


class TestCatalog:
    def test_all_paper_datasets_present(self):
        names = {info.name for info in CATALOG}
        assert {
            "B-Root/Verfploeter",
            "B-Root/Atlas",
            "USC/traceroute",
            "Google/EDNS-CS",
            "Wiki/EDNS-CS",
        } <= names

    def test_lookup(self):
        info = dataset("USC/traceroute")
        assert info.case_study == "multi-homed enterprise"
        assert info.generator == "repro.datasets.usc"

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            dataset("nope")

    def test_generators_importable(self):
        import importlib

        for info in CATALOG:
            module = importlib.import_module(info.generator)
            assert hasattr(module, "generate")
