"""Exact-round-trip tests for OnlineFenrir.to_state()/from_state().

The journal/snapshot layer of ``repro.serve`` relies on one property:
a tracker restored from a checkpoint must answer every subsequent
ingest *identically* to the original — same mode ids, same floats,
same event flags. These tests drive that property over seeded random
streams (the repo's property-test idiom, see conftest) and over the
hand-built corner cases.
"""

from __future__ import annotations

import json
import random
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.compare import UnknownPolicy
from repro.core.online import OnlineFenrir
from repro.core.vector import UNKNOWN

T0 = datetime(2025, 1, 1)


def random_rounds(seed: int, num_networks: int = 12, num_rounds: int = 40):
    """A seeded stream with persistence, churn, and unknowns."""
    rng = random.Random(seed)
    networks = [f"n{i}" for i in range(num_networks)]
    sites = ["LAX", "AMS", "FRA", "NRT"]

    def draw() -> str:
        roll = rng.random()
        if roll < 0.08:
            return UNKNOWN
        return rng.choice(sites)

    assignment = {network: draw() for network in networks}
    rounds = []
    for index in range(num_rounds):
        if index and rng.random() < 0.4:  # occasional shifts, sometimes big
            for network in networks:
                if rng.random() < 0.5:
                    assignment[network] = draw()
        rounds.append((dict(assignment), T0 + timedelta(hours=index)))
    return networks, rounds


def drive(tracker: OnlineFenrir, rounds):
    return [tracker.ingest(states, when) for states, when in rounds]


class TestStateRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("split", [0, 1, 13, 39])
    def test_restore_matches_uninterrupted_run(self, seed, split):
        """Serialize at ``split``, restore, finish: identical updates."""
        networks, rounds = random_rounds(seed)
        oracle = OnlineFenrir(networks=networks)
        oracle_updates = drive(oracle, rounds)

        tracker = OnlineFenrir(networks=networks)
        drive(tracker, rounds[:split])
        # Through JSON text, not just the dict: the on-disk snapshot
        # path must preserve float bits, which json does via repr.
        state = json.loads(json.dumps(tracker.to_state()))
        restored = OnlineFenrir.from_state(state)
        resumed_updates = drive(restored, rounds[split:])

        assert resumed_updates == oracle_updates[split:]
        assert restored.mode_timeline() == oracle.mode_timeline()
        assert restored.num_modes == oracle.num_modes

    def test_round_trip_preserves_config(self):
        weights = np.array([2.0, 1.0, 0.5])
        tracker = OnlineFenrir(
            networks=["a", "b", "c"],
            event_threshold=0.25,
            mode_threshold=0.6,
            policy=UnknownPolicy.EXCLUDE,
            weights=weights,
        )
        tracker.ingest({"a": "X", "b": "X", "c": "Y"}, T0)
        restored = OnlineFenrir.from_state(tracker.to_state())
        assert restored.event_threshold == 0.25
        assert restored.mode_threshold == 0.6
        assert restored.policy is UnknownPolicy.EXCLUDE
        assert np.array_equal(restored.weights, weights)
        assert restored.networks == ("a", "b", "c")

    def test_fresh_tracker_round_trips(self):
        tracker = OnlineFenrir(networks=["a", "b"])
        restored = OnlineFenrir.from_state(tracker.to_state())
        assert restored.num_modes == 0
        assert restored.updates == []
        update = restored.ingest({"a": "X", "b": "Y"}, T0)
        assert update.mode_id == 0 and update.is_new_mode

    def test_restored_tracker_still_enforces_time_order(self):
        tracker = OnlineFenrir(networks=["a"])
        tracker.ingest({"a": "X"}, T0)
        restored = OnlineFenrir.from_state(tracker.to_state())
        with pytest.raises(ValueError, match="forward in time"):
            restored.ingest({"a": "X"}, T0)

    def test_unknown_version_rejected(self):
        tracker = OnlineFenrir(networks=["a"])
        state = tracker.to_state()
        state["version"] = 99
        with pytest.raises(ValueError, match="state version"):
            OnlineFenrir.from_state(state)

    def test_state_is_json_serializable(self):
        networks, rounds = random_rounds(3, num_rounds=10)
        tracker = OnlineFenrir(networks=networks)
        drive(tracker, rounds)
        text = json.dumps(tracker.to_state())  # must not raise
        assert json.loads(text)["version"] == 1


class TestMatch:
    def test_match_does_not_mutate_mode_state(self):
        tracker = OnlineFenrir(networks=["x", "y"])
        tracker.ingest({"x": "LAX", "y": "AMS"}, T0)
        before = tracker.to_state()
        mode_id, similarity = tracker.match({"x": "LAX", "y": "AMS"})
        assert mode_id == 0 and similarity == 1.0
        mode_id, _ = tracker.match({"x": "FRA", "y": "FRA"})
        assert mode_id is None
        after = tracker.to_state()
        # Mode bookkeeping untouched (catalog may grow: identifiers only).
        for key in ("exemplars", "previous", "previous_mode", "updates", "last_time"):
            assert before[key] == after[key]
