"""Round-trip test for the serve ``metrics`` wire command.

A live server, a real TCP client: ingest a handful of rounds, ask for
``metrics``, and assert the Prometheus text that comes back carries the
ingest counters, the per-command latency histogram, and the queue-depth
gauge — i.e. the exposition observable from the outside agrees with
what the server actually did.
"""

from __future__ import annotations

import time
from datetime import datetime, timedelta

import pytest

from repro.serve import ServeClient, ServeConfig

from test_serve_server import ServerThread

T0 = datetime(2025, 3, 1)


def connect(server: ServerThread) -> ServeClient:
    host, port = server.address
    return ServeClient(host=host, port=port)


@pytest.fixture
def server(tmp_path):
    config = ServeConfig(data_dir=tmp_path / "data", port=0, fsync=True)
    with ServerThread(config) as running:
        yield running


def parse_samples(text: str) -> dict[str, float]:
    """Flatten exposition lines into ``{'name{labels}': value}``."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples


class TestMetricsCommand:
    def test_round_trip_reflects_ingest_work(self, server):
        rounds = 8
        with connect(server) as client:
            client.create("svc1", ["n1", "n2"])
            for index in range(rounds):
                client.ingest(
                    "svc1",
                    {"n1": "A", "n2": "B" if index % 2 else "A"},
                    T0 + timedelta(days=index),
                )
            # Queue-depth gauges read qsize at collection time; wait for
            # the writer task to drain so the assertion is deterministic.
            deadline = time.time() + 10
            while time.time() < deadline:
                if client.stats()["monitors"]["svc1"]["queue_depth"] == 0:
                    break
                time.sleep(0.01)
            text = client.metrics()

        samples = parse_samples(text)
        assert samples["serve_rounds_ingested_total"] == rounds
        # Per-command latency histogram, mirrored from LatencyRecorder.
        assert (
            samples['serve_command_latency_seconds_count{command="ingest"}'] == rounds
        )
        assert samples['serve_command_latency_seconds_count{command="create"}'] == 1
        # Journal fsync histogram saw every appended record batch.
        assert samples["serve_journal_fsync_seconds_count"] >= rounds
        assert samples["serve_journal_fsync_seconds_sum"] > 0.0
        # Gauges: drained queue, registered capacity, live uptime.
        assert samples['serve_queue_depth{monitor="svc1"}'] == 0
        assert samples['serve_queue_capacity{monitor="svc1"}'] > 0
        assert samples["serve_uptime_seconds"] >= 0.0

    def test_exposition_is_valid_prometheus_text(self, server):
        with connect(server) as client:
            client.create("svc1", ["n1"])
            response = client.request("metrics")
        assert response["ok"] is True
        assert response["content_type"].startswith("text/plain; version=0.0.4")
        text = response["text"]
        assert text.endswith("\n")
        for line in text.splitlines():
            assert line, "exposition must not contain blank lines"
            if line.startswith("# TYPE"):
                parts = line.split()
                assert parts[3] in ("counter", "gauge", "histogram")
            elif not line.startswith("#"):
                name_part, _, value = line.rpartition(" ")
                float(value)  # every sample value parses as a number
                assert name_part

    def test_registries_are_per_server(self, tmp_path):
        # Two servers must not share counters (no process-global bleed).
        config_a = ServeConfig(data_dir=tmp_path / "a", port=0)
        config_b = ServeConfig(data_dir=tmp_path / "b", port=0)
        with ServerThread(config_a) as first, ServerThread(config_b) as second:
            with connect(first) as client:
                client.create("svc1", ["n1"])
                client.ingest("svc1", {"n1": "A"}, T0)
                first_text = client.metrics()
            with connect(second) as client:
                second_text = client.metrics()
        assert parse_samples(first_text)["serve_rounds_ingested_total"] == 1
        assert "serve_rounds_ingested_total" not in parse_samples(second_text)
