"""Tests for the sharded serve tier: handoff, router, chaos, failover.

Fast tests run everything in-process (real servers and a real router
on an event-loop thread, real sockets, no subprocesses) and cover the
state-shipping commands, routing behavior, and the client timeout
contract. The ``slow``-marked classes spawn genuine multi-process
clusters through :mod:`tests.cluster_chaos` and SIGKILL pieces of them
mid-stream, asserting the surviving tier's final state byte-equals an
uninterrupted single-process oracle.
"""

from __future__ import annotations

import asyncio
import shutil
import socket
import threading
import time
from pathlib import Path

import pytest

from cluster_chaos import (
    ClusterHarness,
    canonical,
    feed_rounds,
    generate_rounds,
    oracle_state,
)
from repro.serve import (
    FenrirServer,
    ServeClient,
    ServeClientError,
    ServeConfig,
    ServeTimeout,
)
from repro.serve.ring import HashRing
from repro.serve.router import ClusterState, ShardRouter
from test_serve_server import ServerThread, T0, connect

NETWORKS = ["n1", "n2", "n3", "n4"]


@pytest.fixture
def server(tmp_path):
    with ServerThread(ServeConfig(data_dir=tmp_path / "data", port=0)) as running:
        yield running


def feed(client: ServeClient, monitor: str, rounds) -> None:
    for states, when in rounds:
        client.ingest(monitor, states, when)


class TestHandoffInstallRetire:
    def test_full_handoff_installs_identically(self, server, tmp_path):
        rounds = generate_rounds(NETWORKS, 25, seed=3)
        with connect(server) as client:
            client.create("svc", NETWORKS)
            feed(client, "svc", rounds)
            export = client.handoff("svc")
        assert export["kind"] == "full"
        assert export["rounds"] == 25
        with ServerThread(
            ServeConfig(data_dir=tmp_path / "other", port=0)
        ) as other:
            with connect(other) as client:
                installed = client.install("svc", export["seq"], export["state"])
                assert installed["rounds"] == 25
                copy = client.handoff("svc")
                assert canonical(copy["state"]) == canonical(export["state"])
                # The installed monitor serves reads and writes.
                assert client.query("svc")["rounds"] == 25
                more = generate_rounds(NETWORKS, 30, seed=3)[25:]
                feed(client, "svc", more)
                assert client.query("svc")["rounds"] == 30

    def test_delta_handoff_chains_onto_installed_copy(self, server, tmp_path):
        rounds = generate_rounds(NETWORKS, 40, seed=5)
        with ServerThread(
            ServeConfig(data_dir=tmp_path / "other", port=0)
        ) as other:
            with connect(server) as source, connect(other) as target:
                source.create("svc", NETWORKS)
                feed(source, "svc", rounds[:25])
                export = source.handoff("svc")
                target.install("svc", export["seq"], export["state"])

                feed(source, "svc", rounds[25:])
                delta = source.handoff("svc", after_rounds=25)
                assert delta["kind"] == "delta"
                target.install("svc", delta["seq"], delta["state"])

                final = target.handoff("svc")
                assert final["rounds"] == 40
                assert canonical(final["state"]) == canonical(
                    source.handoff("svc")["state"]
                )
                # Byte-equality with the in-process oracle, too.
                assert canonical(final["state"]) == canonical(
                    oracle_state(NETWORKS, rounds)
                )

    def test_handoff_unchanged_and_ahead(self, server):
        with connect(server) as client:
            client.create("svc", NETWORKS)
            feed(client, "svc", generate_rounds(NETWORKS, 10, seed=1))
            unchanged = client.handoff("svc", after_rounds=10)
            assert unchanged["kind"] == "unchanged"
            assert "state" not in unchanged
            with pytest.raises(ServeClientError) as caught:
                client.handoff("svc", after_rounds=11)
            assert caught.value.code == "bad_request"
            with pytest.raises(ServeClientError) as caught:
                client.handoff("svc", after_rounds=-1)
            assert caught.value.code == "bad_request"

    def test_delta_install_without_base_is_rejected(self, server):
        with connect(server) as client:
            client.create("src", NETWORKS)
            feed(client, "src", generate_rounds(NETWORKS, 8, seed=2))
            delta = client.handoff("src", after_rounds=4)
            with pytest.raises(ServeClientError) as caught:
                client.install("fresh", delta["seq"], delta["state"])
            assert caught.value.code == "bad_request"

    def test_install_replaces_existing_monitor(self, server, tmp_path):
        rounds = generate_rounds(NETWORKS, 20, seed=9)
        with connect(server) as client:
            client.create("svc", NETWORKS)
            feed(client, "svc", rounds)
            export = client.handoff("svc")
        with ServerThread(
            ServeConfig(data_dir=tmp_path / "other", port=0)
        ) as other:
            with connect(other) as client:
                client.create("svc", NETWORKS)  # diverged local copy
                feed(client, "svc", generate_rounds(NETWORKS, 3, seed=42))
                client.install("svc", export["seq"], export["state"])
                assert client.query("svc")["rounds"] == 20

    def test_retire_removes_and_survives_restart(self, tmp_path):
        config = ServeConfig(data_dir=tmp_path / "data", port=0)
        with ServerThread(config) as running:
            with connect(running) as client:
                client.create("svc", NETWORKS)
                feed(client, "svc", generate_rounds(NETWORKS, 5, seed=4))
                retired = client.retire("svc")
                assert retired["seq"] == 5
                assert client.list_monitors() == []
                with pytest.raises(ServeClientError) as caught:
                    client.query("svc")
                assert caught.value.code == "no_such_monitor"
                # The name is immediately reusable.
                client.create("svc", NETWORKS)
        moved = list((tmp_path / "data").glob("_retired-svc-*"))
        assert len(moved) == 1
        # Recovery skips the retired directory on restart.
        with ServerThread(config) as running:
            with connect(running) as client:
                assert client.list_monitors() == ["svc"]
                assert client.query("svc")["rounds"] == 0

    def test_promote_is_an_idempotent_noop_without_follower(self, server):
        with connect(server) as client:
            first = client.promote()
            assert first["was_following"] is False
            assert client.promote()["was_following"] is False


class RouterTier:
    """N in-process FenrirServers behind a real ShardRouter, one loop."""

    def __init__(self, data_dir: Path, shards: int = 2) -> None:
        self.data_dir = data_dir
        self.num_shards = shards
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self.servers: dict[int, FenrirServer] = {}
        self.state: ClusterState | None = None
        self.router: ShardRouter | None = None
        self.address: tuple[str, int] | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self.state = ClusterState(ring=HashRing.for_cluster(self.num_shards))
            for shard in range(self.num_shards):
                await self._start_shard_inner(shard)
            self.router = ShardRouter(self.state, port=0)
            await self.router.start()
            self.address = self.router.address
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await self.router.stop()
            for server in self.servers.values():
                await server.stop()

        asyncio.run(main())

    async def _start_shard_inner(self, shard: int) -> None:
        server = FenrirServer(
            ServeConfig(data_dir=self.data_dir / f"shard-{shard:02d}", port=0)
        )
        await server.start()
        self.servers[shard] = server
        assert self.state is not None
        self.state.set_address(shard, server.address)

    def _call(self, coroutine) -> None:
        assert self._loop is not None
        asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(timeout=10)

    def stop_shard(self, shard: int) -> None:
        """Take one shard down (the router starts failing it over).

        Mirrors what a real shard death looks like to the router: the
        supervisor clears the address (generation bump), so cached
        upstream connections are dropped rather than reused.
        """
        server = self.servers.pop(shard)

        async def inner() -> None:
            assert self.state is not None
            self.state.set_address(shard, None)
            await server.stop()

        self._call(inner())

    def start_shard(self, shard: int) -> None:
        """Bring a shard back over its journal dir; bumps the generation."""
        self._call(self._start_shard_inner(shard))

    def shard_address(self, shard: int) -> tuple[str, int]:
        return self.servers[shard].address

    def __enter__(self) -> "RouterTier":
        self._thread.start()
        assert self._ready.wait(timeout=10), "router tier failed to start"
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)


@pytest.fixture
def tier(tmp_path):
    with RouterTier(tmp_path / "cluster", shards=2) as running:
        yield running


def tier_client(tier: RouterTier, **kwargs) -> ServeClient:
    host, port = tier.address
    return ServeClient(host, port, **kwargs)


class TestShardRouter:
    def test_routes_to_ring_owner(self, tier):
        ring = HashRing.for_cluster(2)
        names = [f"svc-{i}" for i in range(6)]
        with tier_client(tier) as client:
            for name in names:
                client.create(name, NETWORKS)
                client.ingest(name, {n: "a" for n in NETWORKS}, T0)
            assert client.list_monitors() == sorted(names)
        # Each monitor physically lives on (only) its ring owner.
        for shard in (0, 1):
            host, port = tier.shard_address(shard)
            with ServeClient(host, port) as direct:
                assert direct.list_monitors() == sorted(
                    n for n in names if ring.owner(n) == shard
                )

    def test_stats_merges_and_reports_cluster_health(self, tier):
        with tier_client(tier) as client:
            client.create("alpha", NETWORKS)
            client.ingest("alpha", {n: "a" for n in NETWORKS}, T0)
            stats = client.stats()
            assert stats["counters"]["rounds_ingested"] == 1
            assert stats["cluster"]["shards"] == 2
            assert stats["cluster"]["shard_status"]["0"]["up"]
            assert stats["cluster"]["shard_status"]["1"]["up"]
            assert stats["monitors"]["alpha"]["shard"] == HashRing.for_cluster(
                2
            ).owner("alpha")

    def test_metrics_router_and_per_shard(self, tier):
        with tier_client(tier) as client:
            text = client.metrics()
            assert "cluster_requests_total" in text
            shard_text = client.request("metrics", shard=0)["text"]
            assert "serve_uptime_seconds" in shard_text
            with pytest.raises(ServeClientError) as caught:
                client.request("metrics", shard=99)
            assert caught.value.code == "bad_request"

    def test_promote_and_unknown_commands_are_rejected(self, tier):
        with tier_client(tier) as client:
            with pytest.raises(ServeClientError) as caught:
                client.promote()
            assert caught.value.code == "bad_request"
            with pytest.raises(ServeClientError) as caught:
                client.request("frobnicate")
            assert caught.value.code == "bad_request"
            with pytest.raises(ServeClientError) as caught:
                client.request("query")  # monitor command without a monitor
            assert caught.value.code == "bad_request"

    def test_non_canonical_key_order_still_routes(self, tier):
        # Hand-rolled clients may order JSON keys arbitrarily; the fast
        # regex will not match and the parse fallback must route it.
        host, port = tier.address
        with socket.create_connection((host, port), timeout=10) as sock:
            from repro.serve.protocol import recv_frame, send_frame

            send_frame(
                sock,
                {"networks": NETWORKS, "monitor": "odd", "id": 1, "cmd": "create"},
            )
            response = recv_frame(sock)
            assert response["ok"], response
            assert response["id"] == 1

    def test_dead_shard_answers_shard_unavailable_then_recovers(self, tier):
        ring = HashRing.for_cluster(2)
        name = next(f"svc-{i}" for i in range(100) if ring.owner(f"svc-{i}") == 1)
        rounds = generate_rounds(NETWORKS, 6, seed=11)
        with tier_client(tier) as client:
            client.create(name, NETWORKS)
            feed(client, name, rounds[:3])
            tier.stop_shard(1)
            with pytest.raises(ServeClientError) as caught:
                client.query(name)
            assert caught.value.code == "shard_unavailable"
            assert caught.value.response["shard"] == 1
            assert caught.value.response["id"] is not None
            # Fan-outs degrade instead of failing.
            listed = client.request("list")
            assert listed["shards_down"] == [1]
            assert client.stats()["cluster"]["shard_status"]["1"] == {"up": False}
            # Restart over the same journal dir: the generation bump
            # makes the router re-dial and the replayed monitor answers.
            tier.start_shard(1)
            recovered = client.query(name)
            assert recovered["rounds"] == 3
            feed(client, name, rounds[3:])
            assert client.query(name)["rounds"] == 6


class TestServeTimeout:
    def test_stalled_server_raises_serve_timeout(self):
        # A listener that accepts and reads but never answers: the
        # pathological hang a dead shard used to inflict on clients.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        hold: list[socket.socket] = []

        def stall() -> None:
            conn, _peer = listener.accept()
            hold.append(conn)  # keep it open, never respond

        accepter = threading.Thread(target=stall, daemon=True)
        accepter.start()
        try:
            client = ServeClient(host, port, timeout=0.3)
            started = time.monotonic()
            with pytest.raises(ServeTimeout):
                client.request("stats")
            assert time.monotonic() - started < 5.0
            # The connection is closed after a timeout — the stream
            # position is unknowable, so further use must fail fast
            # rather than desynchronize request/response pairing.
            with pytest.raises(OSError):
                client.request("stats")
        finally:
            accepter.join(timeout=5)
            for conn in hold:
                conn.close()
            listener.close()

    def test_timeout_is_configurable_and_error_is_distinct(self):
        assert issubclass(ServeTimeout, OSError)
        assert not issubclass(ServeTimeout, ServeClientError)
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        try:
            client = ServeClient(host, port, timeout=0.2, connect_timeout=5.0)
            assert client.timeout == 0.2
            with pytest.raises(ServeTimeout) as caught:
                client.request("stats")
            assert "0.2" in str(caught.value)
        finally:
            listener.close()


@pytest.mark.slow
class TestKillAShard:
    def test_sigkill_owner_mid_stream_matches_oracle(self, tmp_path):
        rounds = generate_rounds(NETWORKS, 80, seed=7)
        with ClusterHarness(tmp_path / "cluster", shards=2) as harness:
            owner = harness.owner_of("victim")
            import random

            kill_at = random.Random(7).randrange(20, 60)
            killed = []

            def chaos(applied: int) -> None:
                if not killed and applied >= kill_at:
                    killed.append(applied)
                    # Fire shortly after so the SIGKILL lands while the
                    # next batch is in flight, not between requests.
                    threading.Timer(
                        0.005, harness.kill_child, args=(owner, "primary")
                    ).start()

            fed = feed_rounds(
                harness,
                "victim",
                NETWORKS,
                rounds,
                batch_size=8,
                before_round=chaos,
            )
            assert fed == 80
            assert killed, "chaos hook never fired"
            harness.wait_shard_up(owner)
            final = harness.monitor_state("victim")
        assert canonical(final) == canonical(oracle_state(NETWORKS, rounds))

    def test_unowned_monitors_keep_serving_through_the_kill(self, tmp_path):
        with ClusterHarness(tmp_path / "cluster", shards=2) as harness:
            ring = harness.ring
            survivor = next(
                f"s-{i}" for i in range(100) if ring.owner(f"s-{i}") == 0
            )
            victim_shard = 1
            rounds = generate_rounds(NETWORKS, 10, seed=13)
            with harness.client() as client:
                client.create(survivor, NETWORKS)
                feed(client, survivor, rounds[:5])
                harness.kill_child(victim_shard, "primary")
                # The other shard's monitors never notice.
                feed(client, survivor, rounds[5:])
                assert client.query(survivor)["rounds"] == 10
            harness.wait_shard_up(victim_shard)


@pytest.mark.slow
class TestKillTheRouter:
    def test_router_death_retires_children_and_restart_recovers(self, tmp_path):
        rounds_a = generate_rounds(NETWORKS, 40, seed=21)
        rounds_b = generate_rounds(NETWORKS, 30, seed=22)
        harness = ClusterHarness(tmp_path / "cluster", shards=2)
        try:
            harness.start()
            feed_rounds(harness, "alpha", NETWORKS, rounds_a[:20], batch_size=4)
            feed_rounds(harness, "beta", NETWORKS, rounds_b[:15])
            # SIGKILL the supervisor; --exit-on-stdin-close must take
            # every shard down with it (no orphans squatting journals).
            harness.kill_router()
            harness.restart()
            # Journals replayed; resume feeding to completion.
            assert feed_rounds(harness, "alpha", NETWORKS, rounds_a) == 40
            assert feed_rounds(harness, "beta", NETWORKS, rounds_b) == 30
            state_a = harness.monitor_state("alpha")
            state_b = harness.monitor_state("beta")
        finally:
            harness.stop()
        assert canonical(state_a) == canonical(oracle_state(NETWORKS, rounds_a))
        assert canonical(state_b) == canonical(oracle_state(NETWORKS, rounds_b))


@pytest.mark.slow
class TestRebalance:
    def test_regrow_cluster_moves_monitors_to_ring_owners(self, tmp_path):
        data = tmp_path / "cluster"
        names = [f"svc-{i}" for i in range(4)]
        rounds = {name: generate_rounds(NETWORKS, 30, seed=i) for i, name in
                  enumerate(names)}
        with ClusterHarness(data, shards=1) as harness:
            for name in names:
                feed_rounds(harness, name, NETWORKS, rounds[name], batch_size=8)
        ring = HashRing.for_cluster(2)
        moved = [name for name in names if ring.owner(name) == 1]
        assert moved, "expected at least one monitor to change owner"
        with ClusterHarness(data, shards=2) as harness:
            with harness.client() as client:
                assert client.list_monitors() == sorted(names)
            for name in names:
                assert canonical(harness.monitor_state(name)) == canonical(
                    oracle_state(NETWORKS, rounds[name])
                )
                # And each lives only on its ring owner now.
                with harness.child_client(ring.owner(name), "primary") as direct:
                    assert name in direct.list_monitors()
        # The moved monitors' old directories were renamed, not deleted.
        for name in moved:
            assert list((data / "shard-00").glob(f"_retired-{name}-*"))

    def test_crash_between_install_and_retire_converges(self, tmp_path):
        """A rebalance interrupted after install but before retire.

        Simulated deterministically: both shards hold the monitor at the
        same seq (exactly the on-disk picture a kill at that point
        leaves). The next start must keep the target copy (seq guard,
        no clobber), retire the stale source, and serve bytes equal to
        the oracle.
        """
        data = tmp_path / "cluster"
        ring = HashRing.for_cluster(2)
        name = next(f"mv-{i}" for i in range(100) if ring.owner(f"mv-{i}") == 1)
        rounds = generate_rounds(NETWORKS, 25, seed=31)
        with ClusterHarness(data, shards=1) as harness:
            feed_rounds(harness, name, NETWORKS, rounds)
        # Crash-point: the install onto shard 1 completed, the retire on
        # shard 0 never happened.
        shutil.copytree(data / "shard-00" / name, data / "shard-01" / name)
        with ClusterHarness(data, shards=2) as harness:
            with harness.client() as client:
                listed = client.list_monitors()
            assert listed == [name]
            assert canonical(harness.monitor_state(name)) == canonical(
                oracle_state(NETWORKS, rounds)
            )
            # Still writable on the surviving copy.
            more = generate_rounds(NETWORKS, 30, seed=31)
            assert feed_rounds(harness, name, NETWORKS, more) == 30
        assert list((data / "shard-00").glob(f"_retired-{name}-*"))


@pytest.mark.slow
class TestReplicationFailover:
    def test_promoted_follower_serves_identically(self, tmp_path):
        rounds = generate_rounds(NETWORKS, 50, seed=17)
        with ClusterHarness(
            tmp_path / "cluster", shards=2, replicate=True, sync_interval=0.05
        ) as harness:
            name = "replicated"
            owner = harness.owner_of(name)
            fed = feed_rounds(harness, name, NETWORKS, rounds[:40], batch_size=4)
            assert fed == 40
            harness.wait_follower_rounds(owner, name, 40)
            oracle_40 = oracle_state(NETWORKS, rounds[:40])

            harness.kill_child(owner, "primary")
            harness.wait_shard_up(owner)

            # The promoted follower answers query/timeline/handoff with
            # exactly the oracle's state — nothing lost, nothing skipped.
            assert canonical(harness.monitor_state(name)) == canonical(oracle_40)
            with harness.client() as client:
                stats = client.stats()
                document = stats["monitors"][name]
                replay = document.get("replay")
                assert replay is None or replay["skipped_records"] == 0
                timeline = client.timeline(name)["segments"]
            expected = [
                (mode_id, start.isoformat(), end.isoformat())
                for mode_id, start, end in _oracle_timeline(rounds[:40])
            ]
            assert [
                (seg["mode_id"], seg["start"], seg["end"]) for seg in timeline
            ] == expected

            # The promoted primary takes writes; the tier converges on
            # the full 50-round oracle.
            assert feed_rounds(harness, name, NETWORKS, rounds) == 50
            assert canonical(harness.monitor_state(name)) == canonical(
                oracle_state(NETWORKS, rounds)
            )


def _oracle_timeline(rounds):
    from repro.core.online import OnlineFenrir

    oracle = OnlineFenrir(networks=list(NETWORKS))
    for states, when in rounds:
        oracle.ingest(states, when)
    return oracle.mode_timeline()
