"""Tests for Atlas JSON result I/O and BGP convergence transients."""

from __future__ import annotations

import io
import random
from datetime import timedelta

import pytest

from repro.bgp.convergence import convergence_steps
from repro.bgp.events import RoutingScenario, SiteDrain
from repro.bgp.policy import Announcement
from repro.dns.chaos import IdentifierMap
from repro.io.atlasjson import (
    AtlasDnsResult,
    AtlasPingResult,
    dns_results_to_series,
    read_results,
    write_results,
)

BASE_TS = 1_700_000_000 - (1_700_000_000 % 240)  # aligned to a round


class TestAtlasJson:
    def test_dns_result_round_trip(self):
        result = AtlasDnsResult(6021, 10310, BASE_TS, "b1-lax", rt_ms=23.4)
        rebuilt = AtlasDnsResult.from_json(result.to_json())
        assert rebuilt == result

    def test_dns_timeout_round_trip(self):
        result = AtlasDnsResult(6021, 10310, BASE_TS, None)
        record = result.to_json()
        assert "error" in record
        assert AtlasDnsResult.from_json(record).identifier is None

    def test_ping_result_round_trip(self):
        result = AtlasPingResult(6021, 1001, BASE_TS, (10.0, 11.5, 10.2))
        record = result.to_json()
        assert record["rcvd"] == 3
        assert AtlasPingResult.from_json(record) == result

    def test_ping_all_lost(self):
        result = AtlasPingResult(6021, 1001, BASE_TS, ())
        record = result.to_json()
        assert record["min"] == -1
        assert AtlasPingResult.from_json(record).rtts_ms == ()

    def test_stream_round_trip_mixed(self):
        results = [
            AtlasDnsResult(1, 10, BASE_TS, "b1-ams"),
            AtlasPingResult(2, 11, BASE_TS, (5.0,)),
            AtlasDnsResult(3, 10, BASE_TS + 240, None),
        ]
        buffer = io.StringIO()
        assert write_results(results, buffer) == 3
        buffer.seek(0)
        rebuilt = list(read_results(buffer))
        assert rebuilt == results

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            list(read_results(io.StringIO('{"type":"traceroute"}\n')))

    def test_dns_results_to_series(self):
        mapping = IdentifierMap.for_sites({"LAX", "AMS"})
        results = [
            AtlasDnsResult(1, 10, BASE_TS + 5, "b1-lax"),
            AtlasDnsResult(2, 10, BASE_TS + 9, "b2-ams"),
            AtlasDnsResult(3, 10, BASE_TS + 11, "weird!!"),
            AtlasDnsResult(1, 10, BASE_TS + 245, None),  # next round, timeout
            AtlasDnsResult(2, 10, BASE_TS + 250, "b2-ams"),
        ]
        series = dns_results_to_series(results, mapping)
        assert len(series) == 2
        assert series.networks == ("vp1", "vp2", "vp3")
        first = series[0].to_mapping()
        assert first == {"vp1": "LAX", "vp2": "AMS", "vp3": "other"}
        second = series[1].to_mapping()
        assert second["vp1"] == "err"
        assert second["vp3"] == "unknown"  # not measured this round

    def test_series_feeds_fenrir(self):
        mapping = IdentifierMap.for_sites({"LAX", "AMS"})
        results = []
        for round_index in range(6):
            site = "b1-lax" if round_index < 3 else "b1-ams"
            for probe in range(5):
                results.append(
                    AtlasDnsResult(probe, 10, BASE_TS + 240 * round_index, site)
                )
        series = dns_results_to_series(results, mapping)
        from repro.core import Fenrir

        report = Fenrir().run(series)
        assert len(report.modes) == 2


class TestConvergence:
    @pytest.fixture
    def outcomes(self, small_topology, t0):
        scenario = RoutingScenario(
            small_topology,
            [Announcement(origin=21, label="A"), Announcement(origin=23, label="B")],
        )
        before = scenario.outcome_at(t0)
        scenario.add_event(SiteDrain("A", t0 + timedelta(days=1), t0 + timedelta(days=2)))
        after = scenario.outcome_at(t0 + timedelta(days=1))
        return before, after

    def test_last_step_is_steady_state(self, outcomes, rng):
        before, after = outcomes
        steps = convergence_steps(before, after, rng, rounds=3)
        assert len(steps) == 3
        final = steps[-1]
        for asn, label in final.items():
            route = after.get(asn)
            assert label == (route.label if route else "unreach")

    def test_unchanged_ases_never_flap(self, outcomes, rng):
        before, after = outcomes
        steps = convergence_steps(before, after, rng, rounds=3)
        stable = [
            asn
            for asn in before.routes
            if after.get(asn) and before[asn].path == after[asn].path
        ]
        assert stable
        for step in steps:
            for asn in stable:
                assert step[asn] == after[asn].label

    def test_transients_appear(self, outcomes):
        before, after = outcomes
        rng = random.Random(0)
        steps = convergence_steps(before, after, rng, rounds=3, withdraw_first=1.0)
        first = steps[0]
        transient = [
            asn
            for asn, label in first.items()
            if label == "unreach" and after.get(asn) is not None
        ]
        assert transient  # some ASes pass through unreachability

    def test_stale_routes_with_make_before_break(self, outcomes):
        before, after = outcomes
        rng = random.Random(0)
        steps = convergence_steps(before, after, rng, rounds=4, withdraw_first=0.0)
        first = steps[0]
        stale = [
            asn
            for asn, label in first.items()
            if before.get(asn) is not None
            and after.get(asn) is not None
            and label == before[asn].label != after[asn].label
        ]
        assert stale  # some ASes still answer from the old site

    def test_validation(self, outcomes, rng):
        before, after = outcomes
        with pytest.raises(ValueError):
            convergence_steps(before, after, rng, rounds=0)
        with pytest.raises(ValueError):
            convergence_steps(before, after, rng, withdraw_first=1.5)

    def test_single_round_is_immediate(self, outcomes, rng):
        before, after = outcomes
        steps = convergence_steps(before, after, rng, rounds=1)
        assert len(steps) == 1
        assert steps[0][11] == after.label_of(11)
