"""Tests for geography and hitlists."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import IPv4Prefix, parse_prefix
from repro.net.geo import CITIES, city, haversine_km, propagation_rtt_ms
from repro.net.hitlist import Hitlist, HitlistEntry


class TestGeo:
    def test_haversine_zero_for_same_point(self):
        assert haversine_km(10.0, 20.0, 10.0, 20.0) == 0.0

    def test_haversine_known_distance(self):
        # LAX-AMS is about 8950 km great circle.
        lax, ams = city("LAX"), city("AMS")
        distance = lax.distance_km(ams)
        assert 8500 < distance < 9400

    def test_haversine_symmetry(self):
        a, b = city("SIN"), city("GRU")
        assert a.distance_km(b) == pytest.approx(b.distance_km(a))

    def test_antipodal_is_half_circumference(self):
        assert haversine_km(0, 0, 0, 180) == pytest.approx(20015, rel=0.01)

    def test_rtt_scales_with_distance(self):
        lax = city("LAX")
        assert lax.rtt_ms(city("SEA")) < lax.rtt_ms(city("NYC")) < lax.rtt_ms(city("SIN"))

    def test_rtt_plausible_transatlantic(self):
        # NYC-LHR propagation RTT should land in the tens of ms.
        rtt = city("NYC").rtt_ms(city("LHR"))
        assert 40 < rtt < 120

    def test_propagation_rtt_zero_distance(self):
        assert propagation_rtt_ms(0.0) == 0.0

    def test_city_lookup_case_insensitive(self):
        assert city("lax") is city("LAX")

    def test_city_unknown_raises_with_hint(self):
        with pytest.raises(KeyError, match="unknown city"):
            city("ZZZ")

    def test_paper_sites_present(self):
        for code in ["LAX", "MIA", "ARI", "SCL", "SIN", "IAD", "AMS", "STR", "NAP",
                     "CMH", "SAT", "NRT", "HNL", "EQIAD", "CODFW", "ULSFO"]:
            assert code in CITIES

    @given(
        st.floats(min_value=-90, max_value=90),
        st.floats(min_value=-180, max_value=180),
        st.floats(min_value=-90, max_value=90),
        st.floats(min_value=-180, max_value=180),
    )
    def test_haversine_bounds(self, lat1, lon1, lat2, lon2):
        distance = haversine_km(lat1, lon1, lat2, lon2)
        assert 0 <= distance <= 20038  # half Earth circumference


class TestHitlist:
    def blocks(self, count: int) -> list[IPv4Prefix]:
        base = parse_prefix("10.0.0.0/24")
        return [IPv4Prefix(base.network + (i << 8), 24) for i in range(count)]

    def test_entry_validation_rejects_non_slash24(self):
        with pytest.raises(ValueError):
            HitlistEntry(parse_prefix("10.0.0.0/16"), parse_prefix("10.0.0.0/24").first_address, 0.5)

    def test_entry_validation_rejects_outside_target(self):
        with pytest.raises(ValueError):
            HitlistEntry(
                parse_prefix("10.0.0.0/24"),
                parse_prefix("10.0.1.0/24").first_address + 1,
                0.5,
            )

    def test_entry_validation_rejects_bad_score(self):
        block = parse_prefix("10.0.0.0/24")
        with pytest.raises(ValueError):
            HitlistEntry(block, block.first_address + 1, 1.5)

    def test_from_blocks_targets_inside_blocks(self):
        hitlist = Hitlist.from_blocks(self.blocks(50), random.Random(1))
        assert len(hitlist) == 50
        for entry in hitlist:
            assert entry.target in entry.block
            assert 0.0 <= entry.score <= 1.0
            assert entry.target.value & 0xFF not in (0, 255)

    def test_from_blocks_deterministic(self):
        a = Hitlist.from_blocks(self.blocks(20), random.Random(7))
        b = Hitlist.from_blocks(self.blocks(20), random.Random(7))
        assert a.entries == b.entries

    def test_bimodal_scores_cluster(self):
        hitlist = Hitlist.from_blocks_bimodal(
            self.blocks(400), random.Random(3), alive_fraction=0.5
        )
        mid = sum(1 for e in hitlist if 0.2 < e.score < 0.8)
        assert mid < 20  # scores should avoid the middle

    def test_bimodal_alive_fraction_respected(self):
        hitlist = Hitlist.from_blocks_bimodal(
            self.blocks(600), random.Random(3), alive_fraction=0.55
        )
        alive = sum(1 for e in hitlist if e.score > 0.5)
        assert 0.45 < alive / len(hitlist) < 0.65

    def test_refresh_keeps_targets(self):
        original = Hitlist.from_blocks(self.blocks(30), random.Random(1))
        refreshed = original.refresh_scores(random.Random(2))
        assert [e.target for e in refreshed] == [e.target for e in original]
        assert all(0.0 <= e.score <= 1.0 for e in refreshed)

    def test_blocks_accessor(self):
        blocks = self.blocks(5)
        hitlist = Hitlist.from_blocks(blocks, random.Random(1))
        assert hitlist.blocks() == blocks
