"""Oracle equivalence for the vectorized streaming hot path.

``phi_one_to_many`` and the vectorized ``OnlineFenrir._match_mode``
must agree with the scalar-loop forms they replaced — the scalar
:func:`repro.core.compare.phi` stays in the tree precisely to serve as
this oracle.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.compare import (
    UnknownPolicy,
    phi,
    phi_one_to_many,
    similarity_to_reference,
)
from repro.core.online import OnlineFenrir
from repro.core.series import VectorSeries
from repro.core.vector import UNKNOWN_CODE, RoutingVector, StateCatalog

POLICIES = [UnknownPolicy.PESSIMISTIC, UnknownPolicy.EXCLUDE]


def _random_setup(rng, num_modes, num_networks, num_states=5, unknown_rate=0.2):
    """A catalog, vectors for M exemplars, and one probe vector."""
    catalog = StateCatalog([f"site{i}" for i in range(num_states)])
    networks = tuple(f"n{i}" for i in range(num_networks))
    labels = list(catalog.labels)[3:]  # skip the special states

    def random_vector():
        codes = []
        for _ in range(num_networks):
            if rng.random() < unknown_rate:
                codes.append(UNKNOWN_CODE)
            else:
                codes.append(catalog.code(rng.choice(labels)))
        return RoutingVector(networks, np.asarray(codes, dtype=np.int32), catalog)

    exemplars = [random_vector() for _ in range(num_modes)]
    return catalog, networks, exemplars, random_vector()


class TestPhiOneToMany:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_scalar_loop(self, policy, seed):
        rng = np.random.default_rng(seed)
        num_modes = int(rng.integers(1, 12))
        num_networks = int(rng.integers(1, 30))
        _, _, exemplars, probe = _random_setup(rng, num_modes, num_networks)
        weights = (
            None if seed % 2 else rng.uniform(0.1, 5.0, size=num_networks)
        )
        matrix = np.stack([e.codes for e in exemplars])

        vectorized = phi_one_to_many(
            probe.codes, matrix, weights=weights, policy=policy
        )
        scalar = np.array(
            [phi(e, probe, weights=weights, policy=policy) for e in exemplars]
        )
        np.testing.assert_allclose(vectorized, scalar, rtol=0, atol=1e-12)

    def test_exclude_all_unknown_row_is_nan(self):
        rng = np.random.default_rng(7)
        catalog, networks, exemplars, probe = _random_setup(rng, 3, 6)
        matrix = np.stack([e.codes for e in exemplars])
        matrix[1, :] = UNKNOWN_CODE  # no jointly known network with anyone
        result = phi_one_to_many(
            probe.codes, matrix, policy=UnknownPolicy.EXCLUDE
        )
        assert np.isnan(result[1])

    def test_exclude_all_unknown_probe_is_all_nan(self):
        rng = np.random.default_rng(8)
        _, _, exemplars, probe = _random_setup(rng, 4, 5)
        matrix = np.stack([e.codes for e in exemplars])
        unknown_probe = np.full(5, UNKNOWN_CODE, dtype=np.int32)
        result = phi_one_to_many(
            unknown_probe, matrix, policy=UnknownPolicy.EXCLUDE
        )
        assert np.isnan(result).all()

    def test_pessimistic_never_nan_with_positive_weights(self):
        rng = np.random.default_rng(9)
        _, _, exemplars, probe = _random_setup(rng, 5, 8)
        matrix = np.stack([e.codes for e in exemplars])
        result = phi_one_to_many(probe.codes, matrix)
        assert not np.isnan(result).any()
        assert ((result >= 0) & (result <= 1)).all()

    def test_shape_errors(self):
        with pytest.raises(ValueError, match="2-D"):
            phi_one_to_many(np.zeros(3, dtype=np.int32), np.zeros(3, dtype=np.int32))
        with pytest.raises(ValueError, match="does not match"):
            phi_one_to_many(
                np.zeros(3, dtype=np.int32), np.zeros((2, 4), dtype=np.int32)
            )

    def test_bad_weights_rejected(self):
        matrix = np.zeros((2, 3), dtype=np.int32)
        codes = np.zeros(3, dtype=np.int32)
        with pytest.raises(ValueError, match="shape"):
            phi_one_to_many(codes, matrix, weights=np.ones(4))
        with pytest.raises(ValueError, match="non-negative"):
            phi_one_to_many(codes, matrix, weights=np.array([1.0, -1.0, 1.0]))


class TestSimilarityToReferenceVectorized:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_per_row_phi(self, policy):
        rng = np.random.default_rng(11)
        catalog, networks, exemplars, reference = _random_setup(rng, 6, 10)
        now = datetime(2025, 1, 1)
        stamped = [
            RoutingVector(networks, e.codes, catalog, now + timedelta(hours=i))
            for i, e in enumerate(exemplars)
        ]
        series = VectorSeries.from_vectors(stamped)
        profile = similarity_to_reference(series, reference, policy=policy)
        expected = [phi(v, reference, policy=policy) for v in stamped]
        np.testing.assert_allclose(profile, expected, rtol=0, atol=1e-12)


class TestMatchModeVectorized:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar_oracle_over_a_stream(self, policy, seed):
        """Every _match_mode during a random stream agrees with the
        scalar loop, including the (mode_id, similarity) tie-breaks."""
        rng = np.random.default_rng(seed)
        networks = [f"n{i}" for i in range(12)]
        weights = None if seed % 2 else rng.uniform(0.5, 2.0, size=len(networks))
        tracker = OnlineFenrir(
            networks=networks,
            mode_threshold=0.6,
            policy=policy,
            weights=weights,
        )
        sites = ["LAX", "MIA", "AMS", "unknown"]
        base = datetime(2025, 1, 1)
        for step in range(60):
            states = {
                n: sites[int(rng.integers(0, len(sites)))] for n in networks
            }
            vector = RoutingVector.from_mapping(
                dict(states), catalog=tracker.catalog, networks=tracker.networks
            )
            mode_id, similarity = tracker._match_mode(vector)
            oracle_id, oracle_similarity = tracker._match_mode_scalar(vector)
            assert mode_id == oracle_id
            if weights is None:
                # Integer-valued sums: the matmul and the masked sum are
                # bit-identical.
                assert similarity == oracle_similarity
            else:
                # Dot product and masked pairwise sum may differ in the
                # final ulp with float weights.
                assert similarity == pytest.approx(oracle_similarity, abs=1e-12)
            tracker.ingest(states, base + timedelta(hours=step))

    def test_match_with_no_modes(self):
        tracker = OnlineFenrir(networks=["a", "b"])
        assert tracker.match({"a": "X", "b": "Y"}) == (None, -1.0)

    def test_all_nan_similarities_open_new_mode(self):
        """EXCLUDE policy, probe with nothing jointly known: the scalar
        loop returns (None, nan-free -1.0 path) — vectorized must too."""
        tracker = OnlineFenrir(
            networks=["a", "b"], policy=UnknownPolicy.EXCLUDE
        )
        base = datetime(2025, 1, 1)
        tracker.ingest({"a": "X", "b": "Y"}, base)
        vector = RoutingVector.from_mapping(
            {}, catalog=tracker.catalog, networks=tracker.networks
        )
        assert tracker._match_mode(vector) == tracker._match_mode_scalar(vector)
        assert tracker._match_mode(vector) == (None, -1.0)


class TestWeightValidationAtConstruction:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            OnlineFenrir(networks=["a", "b"], weights=np.ones(3))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            OnlineFenrir(networks=["a", "b"], weights=np.array([1.0, -0.5]))

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError, match="all zero"):
            OnlineFenrir(networks=["a", "b"], weights=np.zeros(2))

    def test_weights_accept_plain_lists(self):
        tracker = OnlineFenrir(networks=["a", "b"], weights=[2.0, 1.0])
        update = tracker.ingest({"a": "X", "b": "Y"}, datetime(2025, 1, 1))
        assert update.is_new_mode


class TestRunningCounters:
    def test_counters_track_scans(self):
        rng = np.random.default_rng(3)
        tracker = OnlineFenrir(networks=[f"n{i}" for i in range(6)])
        sites = ["LAX", "MIA"]
        base = datetime(2025, 1, 1)
        for step in range(40):
            states = {
                n: sites[int(rng.integers(0, 2))] for n in tracker.networks
            }
            tracker.ingest(states, base + timedelta(hours=step))
        assert tracker.num_events == len(tracker.events())
        assert tracker.num_recurrences == len(tracker.recurrences())

    def test_counters_survive_state_round_trip(self):
        rng = np.random.default_rng(4)
        tracker = OnlineFenrir(networks=[f"n{i}" for i in range(5)])
        base = datetime(2025, 1, 1)
        for step in range(25):
            states = {
                n: ["A", "B", "C"][int(rng.integers(0, 3))]
                for n in tracker.networks
            }
            tracker.ingest(states, base + timedelta(hours=step))
        restored = OnlineFenrir.from_state(tracker.to_state())
        assert restored.num_events == tracker.num_events
        assert restored.num_recurrences == tracker.num_recurrences
