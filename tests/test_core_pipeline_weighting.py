"""Tests for the Fenrir pipeline and the weighting schemes."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.pipeline import Fenrir, FenrirConfig
from repro.core.series import VectorSeries
from repro.core.vector import OTHER, UNKNOWN, StateCatalog
from repro.core.weighting import (
    address_weights,
    normalized,
    table_weights,
    uniform_weights,
)


class TestWeighting:
    def test_uniform(self):
        assert uniform_weights(["a", "b"]).tolist() == [1.0, 1.0]

    def test_address_weights_by_prefix_size(self):
        weights = address_weights(["10.0.0.0/16", "10.1.0.0/24", "vp42"])
        assert weights.tolist() == [256.0, 1.0, 1.0]

    def test_address_weights_longer_than_24_is_one(self):
        assert address_weights(["10.0.0.0/30"]).tolist() == [1.0]

    def test_table_weights(self):
        weights = table_weights(["a", "b"], {"a": 7.5}, default=0.5)
        assert weights.tolist() == [7.5, 0.5]

    def test_table_weights_rejects_negative(self):
        with pytest.raises(ValueError):
            table_weights(["a"], {"a": -1.0})

    def test_normalized(self):
        weights = normalized(np.array([1.0, 3.0]))
        assert weights.tolist() == [0.25, 0.75]
        assert weights.sum() == pytest.approx(1.0)

    def test_normalized_rejects_zero_total(self):
        with pytest.raises(ValueError):
            normalized(np.zeros(3))


def build_series(maps, t0=datetime(2024, 1, 1)):
    networks = sorted(maps[0])
    series = VectorSeries(networks, StateCatalog())
    for index, mapping in enumerate(maps):
        series.append_mapping(mapping, t0 + timedelta(days=index))
    return series


class TestPipeline:
    def test_full_run_produces_report(self, simple_series):
        report = Fenrir().run(simple_series)
        assert len(report.modes) == 2
        assert len(report.events) == 1
        assert report.similarity.shape == (5, 5)
        assert "modes: 2" in report.summary()
        assert "mode (i)" in report.mode_timeline()
        assert report.heatmap()
        assert report.stackplot()

    def test_requires_two_observations(self):
        series = build_series([{"x": "A"}])
        with pytest.raises(ValueError):
            Fenrir().run(series)

    def test_known_sites_cleaning(self):
        maps = [{"x": "A", "y": "weird"}] * 2
        maps[1] = dict(maps[1])
        config = FenrirConfig(known_sites=frozenset({"A"}))
        report = Fenrir(config).run(build_series(maps))
        assert report.cleaned[0].state_of("y") == OTHER

    def test_micro_catchment_config(self):
        maps = [{"a": "BIG", "b": "BIG", "c": "BIG", "d": "TINY"}] * 2
        config = FenrirConfig(micro_catchment_min_networks=2)
        report = Fenrir(config).run(build_series(maps))
        assert report.folded_micro_catchments == ["TINY"]
        assert "micro-catchments folded" in report.summary()

    def test_interpolation_in_pipeline(self):
        maps = [{"x": "A"}, {"x": UNKNOWN}, {"x": "A"}]
        report = Fenrir().run(build_series(maps))
        assert report.cleaned[1].state_of("x") == "A"
        # Raw series is preserved unmodified.
        assert report.raw[1].state_of("x") == UNKNOWN

    def test_interpolation_disabled(self):
        maps = [{"x": "A"}, {"x": UNKNOWN}, {"x": "A"}]
        config = FenrirConfig(interpolation_limit=0)
        report = Fenrir(config).run(build_series(maps))
        assert report.cleaned[1].state_of("x") == UNKNOWN

    def test_weight_fn_applied(self, simple_series):
        fenrir = Fenrir(weight_fn=lambda networks: np.arange(1.0, len(networks) + 1))
        report = fenrir.run(simple_series)
        assert report.weights is not None
        assert report.weights.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_detection_threshold_config(self, simple_series):
        config = FenrirConfig(detection_threshold=0.9)
        report = Fenrir(config).run(simple_series)
        assert report.events == []

    def test_recurring_summary(self):
        a = {"x": "A", "y": "A"}
        b = {"x": "B", "y": "B"}
        report = Fenrir().run(build_series([a, a, b, b, a, a]))
        assert "recurring modes" in report.summary()
