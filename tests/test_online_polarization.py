"""Tests for the online Fenrir tracker and polarization analysis."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest

from repro.anycast.polarization import analyze_polarization
from repro.core.online import OnlineFenrir
from repro.net.geo import city

T0 = datetime(2025, 1, 1)

MODE_A = {"x": "LAX", "y": "LAX", "z": "AMS"}
MODE_B = {"x": "AMS", "y": "AMS", "z": "LAX"}


def feed(tracker: OnlineFenrir, assignments):
    updates = []
    for index, assignment in enumerate(assignments):
        updates.append(tracker.ingest(assignment, T0 + timedelta(days=index)))
    return updates


class TestOnlineFenrir:
    def make(self, **kwargs) -> OnlineFenrir:
        return OnlineFenrir(networks=["x", "y", "z"], **kwargs)

    def test_first_observation_opens_mode_zero(self):
        tracker = self.make()
        update = tracker.ingest(MODE_A, T0)
        assert update.mode_id == 0
        assert update.is_new_mode
        assert not update.is_event
        assert update.step_change == 0.0

    def test_stable_stream_single_mode_no_events(self):
        tracker = self.make()
        updates = feed(tracker, [MODE_A] * 5)
        assert tracker.num_modes == 1
        assert all(not u.is_event for u in updates)
        assert {u.mode_id for u in updates} == {0}

    def test_change_opens_new_mode_and_event(self):
        tracker = self.make()
        updates = feed(tracker, [MODE_A, MODE_A, MODE_B, MODE_B])
        assert tracker.num_modes == 2
        assert updates[2].is_event
        assert updates[2].is_new_mode
        assert updates[2].mode_id == 1

    def test_recurrence_detected(self):
        tracker = self.make()
        updates = feed(tracker, [MODE_A] * 3 + [MODE_B] * 3 + [MODE_A] * 2)
        assert tracker.num_modes == 2
        final = updates[-2]
        assert final.mode_id == 0
        assert final.recurred
        assert not final.is_new_mode
        assert len(tracker.recurrences()) == 1

    def test_mode_timeline_segments(self):
        tracker = self.make()
        feed(tracker, [MODE_A] * 2 + [MODE_B] * 2 + [MODE_A])
        timeline = tracker.mode_timeline()
        assert [segment[0] for segment in timeline] == [0, 1, 0]

    def test_partial_change_stays_in_mode(self):
        tracker = self.make(mode_threshold=0.5, event_threshold=0.5)
        slightly_off = dict(MODE_A)
        slightly_off["z"] = "LAX"  # one network moved: Φ = 2/3
        updates = feed(tracker, [MODE_A, slightly_off])
        assert tracker.num_modes == 1
        assert not updates[1].is_event

    def test_exemplars_fixed_against_drift(self):
        # Each round moves one more network; with fixed exemplars the
        # cumulative drift eventually opens a new mode instead of
        # silently chaining.
        networks = [f"n{i}" for i in range(10)]
        tracker = OnlineFenrir(networks=networks, mode_threshold=0.7)
        for step in range(6):
            assignment = {
                n: ("B" if index < step * 2 else "A")
                for index, n in enumerate(networks)
            }
            tracker.ingest(assignment, T0 + timedelta(days=step))
        assert tracker.num_modes >= 2

    def test_time_must_advance(self):
        tracker = self.make()
        tracker.ingest(MODE_A, T0)
        with pytest.raises(ValueError):
            tracker.ingest(MODE_A, T0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            OnlineFenrir(networks=["x"], event_threshold=2.0)
        with pytest.raises(ValueError):
            OnlineFenrir(networks=["x"], mode_threshold=-0.1)

    def test_events_accessor(self):
        tracker = self.make()
        feed(tracker, [MODE_A, MODE_A, MODE_B])
        assert len(tracker.events()) == 1

    def test_matches_offline_modes_on_clean_series(self):
        from repro.core import VectorSeries, find_modes
        from repro.core.vector import StateCatalog

        assignments = [MODE_A] * 4 + [MODE_B] * 4 + [MODE_A] * 4
        series = VectorSeries(["x", "y", "z"], StateCatalog())
        tracker = self.make()
        for index, assignment in enumerate(assignments):
            when = T0 + timedelta(days=index)
            series.append_mapping(assignment, when)
            tracker.ingest(assignment, when)
        offline = find_modes(series)
        online_labels = [u.mode_id for u in tracker.updates]
        assert online_labels == list(offline.labels)


class TestPolarization:
    SITES = {"LAX": city("LAX"), "AMS": city("AMS"), "ARI": city("ARI")}

    def test_well_routed_network_not_polarized(self):
        report = analyze_polarization(
            {"n1": "LAX"}, {"n1": city("SEA")}, self.SITES
        )
        assert report.polarized == []
        assert report.fraction_polarized == 0.0

    def test_polarized_network_found(self):
        # A London network routed to Arica, Chile: the ARI pathology.
        report = analyze_polarization(
            {"n1": "ARI"}, {"n1": city("LHR")}, self.SITES
        )
        assert len(report.polarized) == 1
        entry = report.polarized[0]
        assert entry.assigned_site == "ARI"
        assert entry.nearest_site == "AMS"
        assert entry.excess_km > 3000

    def test_threshold_respected(self):
        report = analyze_polarization(
            {"n1": "AMS"},
            {"n1": city("LHR")},
            {"LAX": city("LAX"), "AMS": city("AMS")},
            threshold_km=10000,
        )
        assert report.polarized == []

    def test_missing_geography_skipped_but_counted(self):
        report = analyze_polarization(
            {"n1": "ARI", "n2": "unknown"}, {"n1": city("LHR")}, self.SITES
        )
        assert report.total_networks == 2
        assert len(report.polarized) == 1

    def test_by_site_and_worst(self):
        assignment = {"n1": "ARI", "n2": "ARI", "n3": "LAX"}
        locations = {"n1": city("LHR"), "n2": city("FRA"), "n3": city("SEA")}
        report = analyze_polarization(assignment, locations, self.SITES)
        assert report.by_site() == {"ARI": 2}
        worst = report.worst(1)
        assert len(worst) == 1
        assert worst[0].excess_km >= max(e.excess_km for e in report.polarized) - 1e-9

    def test_active_sites_filter(self):
        # With ARI decommissioned, an ARI assignment cannot be scored.
        report = analyze_polarization(
            {"n1": "ARI"},
            {"n1": city("LHR")},
            self.SITES,
            active_sites={"LAX", "AMS"},
        )
        assert report.polarized == []

    def test_no_sites_rejected(self):
        with pytest.raises(ValueError):
            analyze_polarization({}, {}, {})

    def test_broot_ari_polarization(self):
        """The B-Root scenario's ARI site is polarized by construction."""
        from datetime import datetime

        from repro.datasets import broot

        study = broot.generate(num_blocks=600, cadence=timedelta(days=60))
        assignment = study.true_assignment(datetime(2022, 6, 1))
        report = analyze_polarization(
            assignment, study.block_locations, study.site_locations,
            active_sites={"LAX", "MIA", "ARI", "SIN", "IAD", "AMS"},
        )
        assert "ARI" in report.by_site()
