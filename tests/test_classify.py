"""Route-change cause classification: features, model, wire command.

Three contracts under test (docs/classification.md):

* the featurizer is byte-deterministic — the same transition yields
  the exact same bytes regardless of dict insertion order, run, or
  process (pinned by a golden digest);
* the model artifact round-trips exactly — ``from_document`` of
  ``to_document`` reproduces ``canonical_json`` byte for byte, and
  training twice from the same data and seed does too;
* the ``classify`` wire command covers its four request shapes
  (install / stream toggle / classify / report), persists the model
  across restarts, and streams labels on ingest-time mode transitions.
"""

from __future__ import annotations

import json
import random
from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify import (
    FEATURE_NAMES,
    FEATURE_WIDTH,
    LABELS,
    ClassifierModel,
    ModelError,
    dataset_digest,
    evaluate_predictions,
    feature_bytes,
    features_digest,
    featurize_mappings,
    macro_f1,
    train_forest,
)
from repro.serve import ServeClientError, ServeConfig
from repro.serve.protocol import COMMANDS, MONITOR_COMMANDS
from repro.serve.server import CLASSIFIER_FILE

from test_serve_server import ServerThread, connect


@pytest.fixture
def server(tmp_path):
    with ServerThread(ServeConfig(data_dir=tmp_path / "data", port=0)) as running:
        yield running

T0 = datetime(2025, 6, 1)

SITES = ["LAX", "MIA", "SIN", "AMS"]

#: Byte-determinism pin for a fixed transition: if this digest ever
#: changes, the featurizer's output bytes changed — a breaking change
#: for persisted models and journaled features, version accordingly.
GOLDEN_BEFORE = {"vp0": "LAX", "vp1": "LAX", "vp2": "MIA", "vp3": "MIA", "vp4": "SIN"}
GOLDEN_AFTER = {"vp0": "MIA", "vp1": "MIA", "vp2": "MIA", "vp3": "MIA", "vp4": "SIN"}
GOLDEN_DIGEST = "ce906209c750f84cc3cb0debff19666d5e89f75e2f24a584904556106148475e"


def synthetic_dataset(samples_per_class: int = 8, seed: int = 0):
    """Separable labeled features, one cluster per taxonomy label."""
    rng = random.Random(seed)
    prototypes = {
        "drain": [0.3, 0.12, 0.2, 0.0, 1.0, 4, 3, 0.9, 0.1, 0.99, 0.99, 1.0, 0.0],
        "traffic-engineering": [0.25, 0.1, 0.2, 0.0, 0.95, 4, 3, 0.9, 0.1, 0.75, 0.99, 0.0, 1.0],
        "third-party-flap": [0.05, 0.03, 0.0, 0.0, 0.2, 4, 4, 0.6, 0.4, 0.99, 0.97, 0.9, 0.1],
        "cable-cut": [0.05, 0.03, 0.0, 0.0, 0.2, 4, 4, 0.6, 0.4, 0.96, 0.99, 0.0, 1.0],
    }
    rows, labels = [], []
    for label, prototype in prototypes.items():
        for _ in range(samples_per_class):
            row = [value + rng.uniform(-0.02, 0.02) for value in prototype]
            row += [rng.uniform(-0.01, 0.01) for _ in range(FEATURE_WIDTH - len(row))]
            rows.append(row)
            labels.append(label)
    return np.asarray(rows, dtype=np.float64), labels


mappings = st.dictionaries(
    st.sampled_from([f"vp{i}" for i in range(12)]),
    st.sampled_from(SITES + ["err"]),
    min_size=1,
    max_size=12,
)


class TestFeaturizer:
    def test_schema(self):
        assert FEATURE_WIDTH == len(FEATURE_NAMES)
        assert len(set(FEATURE_NAMES)) == FEATURE_WIDTH

    def test_golden_digest(self):
        vector = featurize_mappings(GOLDEN_BEFORE, GOLDEN_AFTER, revert=GOLDEN_BEFORE)
        assert features_digest(vector) == GOLDEN_DIGEST

    def test_insertion_order_is_irrelevant(self):
        shuffled_before = dict(reversed(list(GOLDEN_BEFORE.items())))
        shuffled_after = dict(reversed(list(GOLDEN_AFTER.items())))
        a = featurize_mappings(GOLDEN_BEFORE, GOLDEN_AFTER)
        b = featurize_mappings(shuffled_before, shuffled_after)
        assert feature_bytes(a) == feature_bytes(b)

    @given(before=mappings, after=mappings)
    @settings(max_examples=60, deadline=None)
    def test_deterministic_bytes(self, before, after):
        first = featurize_mappings(before, after)
        second = featurize_mappings(dict(sorted(before.items())), dict(after))
        assert feature_bytes(first) == feature_bytes(second)
        assert first.shape == (FEATURE_WIDTH,)
        assert np.isfinite(first).all()

    def test_revert_separates_transient_from_permanent(self):
        reverted_i = FEATURE_NAMES.index("reverted_fraction")
        persisted_i = FEATURE_NAMES.index("persisted_fraction")
        transient = featurize_mappings(
            GOLDEN_BEFORE, GOLDEN_AFTER, revert=GOLDEN_BEFORE
        )
        assert transient[reverted_i] == 1.0
        assert transient[persisted_i] == 0.0
        permanent = featurize_mappings(
            GOLDEN_BEFORE, GOLDEN_AFTER, revert=GOLDEN_AFTER
        )
        assert permanent[reverted_i] == 0.0
        assert permanent[persisted_i] == 1.0

    def test_feature_bytes_normalizes_negative_zero(self):
        zeros = [0.0] * FEATURE_WIDTH
        negative = [-0.0] * FEATURE_WIDTH
        assert feature_bytes(zeros) == feature_bytes(negative)

    def test_feature_bytes_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            feature_bytes([1.0, 2.0])


class TestModel:
    def test_training_is_byte_deterministic(self):
        features, labels = synthetic_dataset()
        first = train_forest(features, labels, seed=13)
        second = train_forest(features, labels, seed=13)
        assert first.canonical_json() == second.canonical_json()
        assert first.content_digest() == second.content_digest()
        different = train_forest(features, labels, seed=14)
        assert different.canonical_json() != first.canonical_json()

    def test_round_trip_is_exact(self, tmp_path):
        features, labels = synthetic_dataset()
        model = train_forest(features, labels, seed=5)
        clone = ClassifierModel.from_document(model.to_document())
        assert clone.canonical_json() == model.canonical_json()
        path = tmp_path / "model.json"
        model.save(path)
        loaded = ClassifierModel.load(path)
        assert loaded.canonical_json() == model.canonical_json()
        assert path.read_text(encoding="utf-8") == model.canonical_json()

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_round_trip_property(self, seed):
        features, labels = synthetic_dataset(samples_per_class=3, seed=seed)
        model = train_forest(features, labels, seed=seed, num_trees=4, max_depth=3)
        document = json.loads(model.canonical_json())
        clone = ClassifierModel.from_document(document)
        assert clone.canonical_json() == model.canonical_json()

    def test_predict_shape(self):
        features, labels = synthetic_dataset()
        model = train_forest(features, labels, seed=5)
        label, scores = model.predict(features[0])
        assert label in LABELS
        assert set(scores) == set(LABELS)
        assert abs(sum(scores.values()) - 1.0) < 1e-6

    def test_learns_the_synthetic_classes(self):
        train_features, train_labels = synthetic_dataset(seed=1)
        eval_features, eval_labels = synthetic_dataset(seed=2)
        model = train_forest(train_features, train_labels, seed=5)
        predictions = [model.predict(row)[0] for row in eval_features]
        assert macro_f1(eval_labels, predictions) > 0.95

    def test_from_document_rejects_garbage(self):
        features, labels = synthetic_dataset(samples_per_class=2)
        document = train_forest(features, labels, seed=5).to_document()
        for mutation in (
            {"type": "not-a-classifier"},
            {"version": 99},
            {"labels": ["drain"]},
            {"feature_names": ["just_one"]},
            {"trees": [{"leaf": {"no-such-label": 1}}]},
            {"trees": [{"feature": 99, "threshold": 0.5}]},
        ):
            broken = {**document, **mutation}
            with pytest.raises(ModelError):
                ClassifierModel.from_document(broken)

    def test_evaluation_report(self):
        truths = ["drain", "drain", "cable-cut", "third-party-flap"]
        predictions = ["drain", "cable-cut", "cable-cut", "third-party-flap"]
        report = evaluate_predictions(truths, predictions, LABELS)
        assert report["accuracy"] == 0.75
        assert report["per_label"]["drain"]["recall"] == 0.5
        assert report["confusion"]["drain"]["cable-cut"] == 1

    def test_dataset_digest_tracks_content(self):
        features, labels = synthetic_dataset(samples_per_class=2)
        digest = dataset_digest(features, labels)
        assert digest == dataset_digest(features.copy(), list(labels))
        bumped = features.copy()
        bumped[0, 0] += 1.0
        assert digest != dataset_digest(bumped, labels)


@pytest.fixture(scope="module")
def tiny_model():
    features, labels = synthetic_dataset(samples_per_class=4, seed=3)
    return train_forest(features, labels, seed=11, num_trees=8, max_depth=4)


class TestWireContract:
    def test_command_registered(self):
        assert "classify" in COMMANDS
        assert "classify" in MONITOR_COMMANDS

    def test_install_classify_and_stream(self, server, tiny_model):
        with connect(server) as client:
            networks = sorted(GOLDEN_BEFORE)
            client.create("svc", networks)

            report = client.classify("svc")
            assert report["model"] is None
            assert report["stream"] is False
            assert report["recent"] == []

            installed = client.classify("svc", model=tiny_model.to_document())
            assert installed["installed"] is True
            assert installed["model"]["digest"] == tiny_model.content_digest()

            by_mapping = client.classify(
                "svc", before=GOLDEN_BEFORE, after=GOLDEN_AFTER
            )
            assert by_mapping["label"] in LABELS
            assert set(by_mapping["scores"]) == set(LABELS)
            assert len(by_mapping["features"]) == FEATURE_WIDTH

            # The features echoed back classify to the same label.
            by_features = client.classify("svc", features=by_mapping["features"])
            assert by_features["label"] == by_mapping["label"]

            client.classify("svc", stream="on")
            client.ingest("svc", GOLDEN_BEFORE, T0)
            client.ingest("svc", GOLDEN_AFTER, T0 + timedelta(hours=1))
            report = client.classify("svc")
            assert report["stream"] is True
            assert len(report["recent"]) == 1
            event = report["recent"][0]
            assert event["label"] in LABELS
            assert event["mode_id"] == 1

            client.classify("svc", stream="off")
            assert client.classify("svc")["stream"] is False

    def test_streaming_only_labels_events(self, server, tiny_model):
        with connect(server) as client:
            client.create("calm", sorted(GOLDEN_BEFORE))
            client.classify("calm", model=tiny_model.to_document())
            client.classify("calm", stream="on")
            for step in range(3):  # identical rounds: no transitions
                client.ingest("calm", GOLDEN_BEFORE, T0 + timedelta(hours=step))
            assert client.classify("calm")["recent"] == []

    def test_error_cases(self, server, tiny_model):
        with connect(server) as client:
            client.create("svc", sorted(GOLDEN_BEFORE))
            with pytest.raises(ServeClientError) as excinfo:
                client.classify("missing")
            assert excinfo.value.code == "no_such_monitor"
            with pytest.raises(ServeClientError) as excinfo:
                client.classify("svc", stream="on")  # no model yet
            assert excinfo.value.code == "bad_request"
            with pytest.raises(ServeClientError) as excinfo:
                client.classify("svc", before=GOLDEN_BEFORE, after=GOLDEN_AFTER)
            assert excinfo.value.code == "bad_request"
            client.classify("svc", model=tiny_model.to_document())
            with pytest.raises(ServeClientError) as excinfo:
                client.classify("svc", stream="sometimes")
            assert excinfo.value.code == "bad_request"
            with pytest.raises(ServeClientError) as excinfo:
                client.classify("svc", features=[1.0, 2.0])
            assert excinfo.value.code == "bad_request"
            with pytest.raises(ServeClientError) as excinfo:
                client.request("classify", monitor="svc", model={"type": "junk"})
            assert excinfo.value.code == "bad_request"

    def test_model_persists_across_restart(self, tmp_path, tiny_model):
        config = ServeConfig(data_dir=tmp_path / "data", port=0)
        with ServerThread(config) as server, connect(server) as client:
            client.create("svc", sorted(GOLDEN_BEFORE))
            client.classify("svc", model=tiny_model.to_document())
            client.classify("svc", stream="on")
        artifact = tmp_path / "data" / "svc" / CLASSIFIER_FILE
        assert artifact.exists()
        assert artifact.read_text(encoding="utf-8") == tiny_model.canonical_json()
        with ServerThread(config) as server, connect(server) as client:
            report = client.classify("svc")
            assert report["model"]["digest"] == tiny_model.content_digest()
            # Streaming is a runtime toggle, not persisted state.
            assert report["stream"] is False

    def test_classify_metrics_exposed(self, server, tiny_model):
        with connect(server) as client:
            client.create("svc", sorted(GOLDEN_BEFORE))
            client.classify("svc", model=tiny_model.to_document())
            client.classify("svc", before=GOLDEN_BEFORE, after=GOLDEN_AFTER)
            text = client.request("metrics")["text"]
        assert "classify_requests_total" in text
        assert "classify_latency_seconds" in text
        assert "serve_classify_models_installed_total" in text


class TestCli:
    def test_show(self, tmp_path, tiny_model, capsys):
        from repro.cli import main

        path = tmp_path / "model.json"
        tiny_model.save(path)
        assert main(["classify", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert tiny_model.content_digest() in out
        assert "drain" in out

    def test_show_rejects_garbage(self, tmp_path, tiny_model):
        from repro.cli import main

        path = tmp_path / "model.json"
        path.write_text(json.dumps({"type": "junk"}))
        with pytest.raises(SystemExit):
            main(["classify", "show", str(path)])
