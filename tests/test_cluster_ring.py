"""Property tests for the consistent-hash ring (``repro.serve.ring``).

The ring is the cluster's placement contract: the router, the
supervisor's rebalance pass, and any client-side sharding must all
agree on which shard owns a monitor, across processes and Python
versions. Hypothesis drives the three properties that contract rests
on: total deterministic ownership, bounded imbalance, and minimal
remapping when the shard set changes by one.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.ring import DEFAULT_VNODES, HashRing, misplaced, stable_hash

# Monitor-name-shaped keys (the ring only ever sees valid monitor names).
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789._-", min_size=1, max_size=24
)
shard_sets = st.sets(st.integers(min_value=0, max_value=63), min_size=1, max_size=8)


class TestOwnership:
    @given(shards=shard_sets, key=names)
    def test_ownership_is_total_and_deterministic(self, shards, key):
        ring = HashRing(shards)
        owner = ring.owner(key)
        assert owner in shards
        # Same inputs, fresh ring: placement must not depend on object
        # identity, construction order, or process-salted hashing.
        assert HashRing(sorted(shards)).owner(key) == owner

    @given(key=names)
    def test_single_shard_owns_everything(self, key):
        assert HashRing([7]).owner(key) == 7

    @given(shards=shard_sets, keys=st.lists(names, max_size=50))
    def test_ownership_partitions_the_keyspace(self, shards, keys):
        ring = HashRing(shards)
        owners = ring.ownership(keys)
        assert set(owners) == set(keys)
        assert set(owners.values()) <= set(shards)
        assert all(owners[key] == ring.owner(key) for key in keys)

    def test_stable_hash_is_pinned(self):
        # The digest is part of the on-disk/cross-process contract: if
        # this changes, every existing cluster rebalances on upgrade.
        assert stable_hash("alpha") == stable_hash("alpha")
        assert stable_hash("alpha") != stable_hash("beta")
        assert stable_hash("shard-0:0") == 0x81EA1B4AE4C0690D


class TestBalance:
    @settings(deadline=None, max_examples=25)
    @given(num_shards=st.integers(min_value=1, max_value=8))
    def test_load_within_bound_of_ideal(self, num_shards):
        ring = HashRing.for_cluster(num_shards)
        keys = [f"monitor-{i:04d}" for i in range(600)]
        counts = Counter(ring.owner(key) for key in keys)
        ideal = len(keys) / num_shards
        # 128 vnodes lands max/ideal around 1.3 empirically; 1.6 gives
        # headroom without letting real imbalance regress unnoticed.
        assert max(counts.values()) <= 1.6 * ideal

    def test_counts_cover_every_shard(self):
        ring = HashRing.for_cluster(5, vnodes=DEFAULT_VNODES)
        keys = [f"monitor-{i:04d}" for i in range(600)]
        counts = ring.counts(keys)
        # Every shard appears (even a hypothetical zero-load one) and
        # the totals partition the keyspace exactly.
        assert set(counts) == {0, 1, 2, 3, 4}
        assert sum(counts.values()) == len(keys)


class TestMinimalRemap:
    @settings(deadline=None, max_examples=25)
    @given(num_shards=st.integers(min_value=1, max_value=7))
    def test_adding_a_shard_only_moves_keys_to_it(self, num_shards):
        before = HashRing.for_cluster(num_shards)
        after = before.with_shard(num_shards)
        keys = [f"monitor-{i:04d}" for i in range(400)]
        moved = [key for key in keys if before.owner(key) != after.owner(key)]
        # Consistent hashing's defining property: growth steals keys for
        # the new shard and disturbs nothing else.
        assert all(after.owner(key) == num_shards for key in moved)
        # And it steals roughly its fair share, not the whole keyspace.
        assert len(moved) <= 2 * len(keys) / (num_shards + 1)

    @settings(deadline=None, max_examples=25)
    @given(num_shards=st.integers(min_value=2, max_value=8), data=st.data())
    def test_removing_a_shard_only_moves_its_keys(self, num_shards, data):
        before = HashRing.for_cluster(num_shards)
        victim = data.draw(st.sampled_from(sorted(before.shards)))
        after = before.without_shard(victim)
        keys = [f"monitor-{i:04d}" for i in range(400)]
        for key in keys:
            if before.owner(key) != victim:
                assert after.owner(key) == before.owner(key)
            else:
                assert after.owner(key) != victim


class TestMisplaced:
    def test_reports_only_wrongly_placed_monitors(self):
        ring = HashRing.for_cluster(2)
        keys = [f"monitor-{i}" for i in range(20)]
        owners = ring.ownership(keys)
        shard_one_keys = sorted(k for k, s in owners.items() if s == 1)
        assert shard_one_keys, "expected some keys on shard 1"
        # Deliberately misfile every shard-1 monitor onto shard 0.
        holdings = {0: sorted(keys), 1: []}
        moves = misplaced(ring, holdings)
        assert sorted(name for name, _, _ in moves) == shard_one_keys
        assert all((source, target) == (0, 1) for _, source, target in moves)
        # Correctly placed holdings produce no moves.
        placed = {
            shard: [k for k, s in owners.items() if s == shard] for shard in (0, 1)
        }
        assert misplaced(ring, placed) == []

    def test_equality_and_repr(self):
        assert HashRing.for_cluster(3) == HashRing([0, 1, 2])
        assert HashRing.for_cluster(3) != HashRing.for_cluster(4)
        assert "shards=(0, 1, 2)" in repr(HashRing.for_cluster(3))
