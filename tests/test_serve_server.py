"""End-to-end tests for the ``repro serve`` server.

Covers the happy path and — per the durability story — the failure
paths: malformed frames, oversized frames, bounded-queue overload,
and kill-mid-write-then-replay, asserting the restored monitor's mode
timeline matches an uninterrupted oracle run.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from datetime import datetime, timedelta
from pathlib import Path

import pytest

from repro.core.online import OnlineFenrir
from repro.serve import (
    BatchRejectedError,
    FenrirServer,
    OverloadedError,
    ServeClient,
    ServeClientError,
    ServeConfig,
)
from repro.serve.protocol import recv_frame, send_frame

T0 = datetime(2025, 1, 1)
REPO_ROOT = Path(__file__).resolve().parent.parent


class ServerThread:
    """A FenrirServer on its own event loop thread, for blocking clients."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.address: tuple[str, int] | None = None
        self.server: FenrirServer | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            self.server = FenrirServer(self.config)
            await self.server.start()
            self.address = self.server.address
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await self.server.stop()

        asyncio.run(main())

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)


@pytest.fixture
def server(tmp_path):
    with ServerThread(ServeConfig(data_dir=tmp_path / "data", port=0)) as running:
        yield running


def connect(server: ServerThread, **kwargs) -> ServeClient:
    host, port = server.address
    return ServeClient(host=host, port=port, **kwargs)


class TestCommands:
    def test_create_ingest_query_timeline(self, server):
        with connect(server) as client:
            client.create("svc", ["x", "y", "z"])
            first = client.ingest("svc", {"x": "L", "y": "L", "z": "A"}, T0)
            assert first["update"]["mode_id"] == 0
            assert first["update"]["is_new_mode"]
            assert first["seq"] == 1
            second = client.ingest(
                "svc", {"x": "A", "y": "A", "z": "L"}, T0 + timedelta(days=1)
            )
            assert second["update"]["is_event"]
            assert second["update"]["mode_id"] == 1

            summary = client.query("svc")
            assert summary["rounds"] == 2
            assert summary["modes"] == 2
            assert summary["current_mode"] == 1

            match = client.query("svc", states={"x": "L", "y": "L", "z": "A"})
            assert match["match"]["mode_id"] == 0
            assert not match["match"]["would_open_new_mode"]

            timeline = client.timeline("svc")
            assert [seg["mode_id"] for seg in timeline["segments"]] == [0, 1]

    def test_multiplexed_monitors_are_independent(self, server):
        with connect(server) as client:
            client.create("alpha", ["x", "y"])
            client.create("beta", ["p", "q", "r"])
            client.ingest("alpha", {"x": "L", "y": "L"}, T0)
            client.ingest("beta", {"p": "A", "q": "A", "r": "B"}, T0)
            client.ingest("beta", {"p": "B", "q": "B", "r": "A"}, T0 + timedelta(1))
            assert client.query("alpha")["rounds"] == 1
            assert client.query("beta")["rounds"] == 2
            assert sorted(client.list_monitors()) == ["alpha", "beta"]

    def test_stats_counters_and_latency(self, server):
        with connect(server) as client:
            client.create("svc", ["x"])
            client.ingest("svc", {"x": "L"}, T0)
            stats = client.stats()
            assert stats["counters"]["rounds_ingested"] == 1
            assert stats["counters"]["monitors_created"] == 1
            assert stats["monitors"]["svc"]["queue_capacity"] == 256
            assert "ingest" in stats["latency"]
            assert stats["latency"]["ingest"]["count"] == 1
            assert stats["latency"]["ingest"]["p99_ms"] >= 0

    def test_snapshot_command(self, server):
        with connect(server) as client:
            client.create("svc", ["x"])
            client.ingest("svc", {"x": "L"}, T0)
            response = client.snapshot("svc")
            assert response["seq"] == 1
            stats = client.stats()
            assert stats["counters"]["snapshots_taken"] == 1

    def test_errors_have_codes(self, server):
        with connect(server) as client:
            with pytest.raises(ServeClientError) as exc_info:
                client.query("ghost")
            assert exc_info.value.code == "no_such_monitor"

            client.create("svc", ["x"])
            with pytest.raises(ServeClientError) as exc_info:
                client.create("svc", ["x"])
            assert exc_info.value.code == "monitor_exists"

            with pytest.raises(ServeClientError) as exc_info:
                client.request("create", monitor="bad/../name", networks=["x"])
            assert exc_info.value.code == "bad_request"

            with pytest.raises(ServeClientError) as exc_info:
                client.request("warp")
            assert exc_info.value.code == "bad_request"

    def test_out_of_order_ingest_rejected_but_connection_lives(self, server):
        with connect(server) as client:
            client.create("svc", ["x"])
            client.ingest("svc", {"x": "L"}, T0)
            with pytest.raises(ServeClientError) as exc_info:
                client.ingest("svc", {"x": "A"}, T0)
            assert exc_info.value.code == "out_of_order"
            # Same connection still serves requests.
            assert client.query("svc")["rounds"] == 1

    def test_server_restart_recovers_monitors(self, tmp_path):
        data_dir = tmp_path / "data"
        with ServerThread(ServeConfig(data_dir=data_dir, port=0)) as first:
            with connect(first) as client:
                client.create("svc", ["x", "y"])
                client.ingest("svc", {"x": "L", "y": "L"}, T0)
                client.ingest("svc", {"x": "A", "y": "A"}, T0 + timedelta(1))
                expected = client.timeline("svc")["segments"]
        with ServerThread(ServeConfig(data_dir=data_dir, port=0)) as second:
            with connect(second) as client:
                assert client.timeline("svc")["segments"] == expected
                stats = client.stats()
                assert stats["counters"]["monitors_recovered"] == 1
                replay = stats["monitors"]["svc"]["replay"]
                assert replay["replayed_records"] == 2
                # Stream continues exactly where it stopped.
                client.ingest("svc", {"x": "L", "y": "L"}, T0 + timedelta(2))
                assert client.query("svc")["rounds"] == 3


class TestFailurePaths:
    def raw_socket(self, server: ServerThread) -> socket.socket:
        return socket.create_connection(server.address, timeout=10)

    def test_malformed_frame_answered_then_closed(self, server):
        with self.raw_socket(server) as sock:
            payload = b"this is not json"
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            response = recv_frame(sock)
            assert response["ok"] is False
            assert response["error"] == "bad_frame"
            assert sock.recv(1) == b""  # server hung up

    def test_oversized_frame_rejected_before_read(self, server):
        with self.raw_socket(server) as sock:
            # Declare a 1 GiB frame; never send the body.
            sock.sendall(struct.pack(">I", 1 << 30))
            response = recv_frame(sock)
            assert response["ok"] is False
            assert response["error"] == "frame_too_large"
            assert sock.recv(1) == b""

    def test_non_object_payload_rejected(self, server):
        with self.raw_socket(server) as sock:
            send_frame(sock, {"cmd": "stats"})  # prove the socket works
            assert recv_frame(sock)["ok"]
            payload = json.dumps([1, 2, 3]).encode()
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            assert recv_frame(sock)["error"] == "bad_frame"

    def test_abrupt_disconnect_leaves_server_healthy(self, server):
        sock = self.raw_socket(server)
        sock.sendall(struct.pack(">I", 100))  # promise 100 bytes...
        sock.close()  # ...vanish instead
        time.sleep(0.05)
        with connect(server) as client:
            assert client.stats()["ok"]

    def test_overload_response_when_queue_full(self, tmp_path):
        config = ServeConfig(data_dir=tmp_path / "data", port=0, queue_size=1)
        with ServerThread(config) as running:
            host, port = running.address
            with ServeClient(host=host, port=port) as setup:
                setup.create("svc", ["x"])
            # Stall the drain (as a wedged disk or hot monitor would):
            # cancel the writer task so the bounded queue can only fill.
            runtime = running.server._monitors["svc"]
            running._loop.call_soon_threadsafe(runtime.worker.cancel)

            stalled = socket.create_connection((host, port), timeout=10)
            try:
                send_frame(
                    stalled,
                    {
                        "cmd": "ingest",
                        "id": 1,
                        "monitor": "svc",
                        "time": T0.isoformat(),
                        "states": {"x": "L"},
                    },
                )  # never answered: its record sits in the full queue
                with ServeClient(host=host, port=port) as client:
                    deadline = time.time() + 5
                    while time.time() < deadline:
                        depth = client.stats()["monitors"]["svc"]["queue_depth"]
                        if depth >= 1:
                            break
                        time.sleep(0.01)
                    else:
                        pytest.fail("queued ingest never became visible")
                    with pytest.raises(OverloadedError) as exc_info:
                        client.ingest("svc", {"x": "A"}, T0 + timedelta(1))
                    assert exc_info.value.response["queue_depth"] >= 1
            finally:
                stalled.close()

    def test_non_string_state_value_rejected_before_journal(self, server):
        with connect(server) as client:
            client.create("svc", ["x"])
            with pytest.raises(ServeClientError) as exc_info:
                client.request(
                    "ingest",
                    monitor="svc",
                    states={"x": ["L", "A"]},
                    time=T0.isoformat(),
                )
            assert exc_info.value.code == "bad_request"
            # The bad round was never journaled or applied: the stream
            # continues at seq 1 and the connection stays usable.
            assert client.ingest("svc", {"x": "L"}, T0)["seq"] == 1

    def test_internal_apply_error_answered_not_hung(self, server):
        with connect(server) as client:
            client.create("svc", ["x"])
            runtime = server.server._monitors["svc"]

            def explode(states, when):
                raise RuntimeError("disk on fire")

            runtime.monitor.ingest = explode
            with pytest.raises(ServeClientError) as exc_info:
                client.ingest("svc", {"x": "L"}, T0)
            assert exc_info.value.code == "internal"
            del runtime.monitor.ingest  # restore the real method
            assert client.ingest("svc", {"x": "L"}, T0)["seq"] == 1
            assert client.stats()["counters"]["ingest_failures"] == 1
            # The broad handler's visible trace: a per-site labeled
            # counter in the Prometheus exposition (`repro client metrics`).
            assert (
                'serve_internal_errors_total{site="ingest"} 1'
                in client.metrics()
            )

    def test_internal_dispatch_error_answered_not_hung(self, server):
        with connect(server) as client:
            client.create("svc", ["x"])
            runtime = server.server._monitors["svc"]

            def explode():
                raise RuntimeError("describe broke")

            runtime.monitor.describe = explode
            with pytest.raises(ServeClientError) as exc_info:
                client.query("svc")
            assert exc_info.value.code == "internal"
            del runtime.monitor.describe
            assert client.query("svc")["rounds"] == 0
            assert client.stats()["counters"]["internal_errors"] == 1
            assert (
                'serve_internal_errors_total{site="dispatch"} 1'
                in client.metrics()
            )

    def test_corrupt_monitor_does_not_block_startup(self, tmp_path):
        data_dir = tmp_path / "data"
        with ServerThread(ServeConfig(data_dir=data_dir, port=0)) as first:
            with connect(first) as client:
                client.create("good", ["x"])
                client.create("bad", ["x"])
                client.ingest("good", {"x": "L"}, T0)
        (data_dir / "bad" / "snapshot.json").write_text("{ not json")
        with ServerThread(ServeConfig(data_dir=data_dir, port=0)) as second:
            with connect(second) as client:
                assert client.list_monitors() == ["good"]
                assert client.query("good")["rounds"] == 1
                stats = client.stats()
                assert stats["counters"]["monitors_failed"] == 1
                assert "bad" in stats["failed_monitors"]

    def test_slow_reader_backpressures_only_itself(self, server):
        """A client that never reads responses cannot wedge others."""
        with connect(server) as active:
            active.create("svc", ["x"])
        slow = self.raw_socket(server)
        try:
            # Pipeline many requests without reading a single response:
            # the server's drain() keeps per-connection order and bounds
            # buffering to this socket.
            for index in range(200):
                send_frame(slow, {"cmd": "query", "id": index, "monitor": "svc"})
            with connect(server) as other:
                for index in range(20):
                    other.ingest(
                        "svc", {"x": f"s{index}"}, T0 + timedelta(hours=index)
                    )
                assert other.query("svc")["rounds"] == 20
        finally:
            slow.close()


class TestBatchCommands:
    """Wire-level ``ingest_batch``: one round trip, many rounds."""

    def rounds(self, count, start=0):
        return [
            (
                {"x": "LAX" if (start + i) % 3 else "AMS", "y": "LAX"},
                T0 + timedelta(hours=start + i),
            )
            for i in range(count)
        ]

    def test_batch_matches_sequential_ingest(self, tmp_path):
        rounds = self.rounds(50)
        with ServerThread(
            ServeConfig(data_dir=tmp_path / "data", port=0)
        ) as running:
            with connect(running) as client:
                client.create("one", ["x", "y"])
                client.create("bat", ["x", "y"])
                sequential = [
                    client.ingest("one", states, when)["update"]
                    for states, when in rounds
                ]
                response = client.ingest_batch("bat", rounds)
                assert response["accepted"] == 50
                assert response["failed"] is None
                assert response["seq"] == 50
                assert response["results"] == sequential
                one, bat = client.query("one"), client.query("bat")
                for document in (one, bat):
                    document.pop("id")
                    document.pop("monitor")
                assert one == bat

    def test_ingest_many_returns_all_updates(self, server):
        rounds = self.rounds(45)
        with connect(server) as client:
            client.create("svc", ["x", "y"])
            updates = client.ingest_many("svc", rounds, batch_size=16)
            assert len(updates) == 45
            assert client.query("svc")["rounds"] == 45
            stats = client.stats()
            assert stats["counters"]["rounds_ingested"] == 45
            assert stats["counters"]["batches_ingested"] == 3

    def test_partial_failure_reports_first_bad_record(self, server):
        rounds = self.rounds(10)
        rounds[6] = ({"x": 42, "y": "LAX"}, rounds[6][1])  # non-string label
        with connect(server) as client:
            client.create("svc", ["x", "y"])
            response = client.ingest_batch("svc", rounds)
            assert response["accepted"] == 6
            assert response["failed"]["index"] == 6
            assert response["failed"]["error"] == "bad_request"
            assert client.query("svc")["rounds"] == 6
            # the stream continues after the durable prefix
            assert client.ingest("svc", *self.rounds(1, start=20)[0])["seq"] == 7

    def test_out_of_order_round_mid_batch(self, server):
        rounds = self.rounds(10)
        rounds[4] = (rounds[4][0], rounds[2][1])
        with connect(server) as client:
            client.create("svc", ["x", "y"])
            response = client.ingest_batch("svc", rounds)
            assert response["accepted"] == 4
            assert response["failed"]["index"] == 4
            assert response["failed"]["error"] == "out_of_order"

    def test_malformed_round_shape_reported(self, server):
        with connect(server) as client:
            client.create("svc", ["x", "y"])
            response = client.request(
                "ingest_batch",
                monitor="svc",
                rounds=[
                    {"time": T0.isoformat(), "states": {"x": "L", "y": "L"}},
                    "not a round",
                ],
            )
            assert response["accepted"] == 1
            assert response["failed"]["index"] == 1
            assert response["failed"]["error"] == "bad_request"

    def test_rounds_must_be_a_list(self, server):
        with connect(server) as client:
            client.create("svc", ["x", "y"])
            with pytest.raises(ServeClientError) as exc_info:
                client.request("ingest_batch", monitor="svc", rounds="nope")
            assert exc_info.value.code == "bad_request"

    def test_ingest_many_raises_with_absolute_index(self, server):
        rounds = self.rounds(40)
        rounds[25] = ({"x": None, "y": "LAX"}, rounds[25][1])
        with connect(server) as client:
            client.create("svc", ["x", "y"])
            with pytest.raises(BatchRejectedError) as exc_info:
                client.ingest_many("svc", rounds, batch_size=10)
            assert exc_info.value.index == 25
            assert len(exc_info.value.applied) == 25
            assert client.query("svc")["rounds"] == 25

    def test_batch_replay_after_restart(self, tmp_path):
        data_dir = tmp_path / "data"
        rounds = self.rounds(60)
        with ServerThread(ServeConfig(data_dir=data_dir, port=0)) as first:
            with connect(first) as client:
                client.create("svc", ["x", "y"])
                client.ingest_many("svc", rounds, batch_size=16)
                expected = client.timeline("svc")["segments"]
        with ServerThread(ServeConfig(data_dir=data_dir, port=0)) as second:
            with connect(second) as client:
                assert client.timeline("svc")["segments"] == expected
                assert client.query("svc")["rounds"] == 60

    def test_create_with_weights_over_the_wire(self, server):
        with connect(server) as client:
            client.request(
                "create", monitor="svc", networks=["x", "y"], weights=[2.0, 1.0]
            )
            assert client.ingest("svc", {"x": "L", "y": "L"}, T0)["seq"] == 1
            with pytest.raises(ServeClientError) as exc_info:
                client.request(
                    "create", monitor="bad", networks=["x", "y"], weights=[1.0]
                )
            assert exc_info.value.code == "bad_request"
            with pytest.raises(ServeClientError) as exc_info:
                client.request(
                    "create", monitor="bad", networks=["x", "y"], weights="heavy"
                )
            assert exc_info.value.code == "bad_request"
            assert client.list_monitors() == ["svc"]


def wait_for_port_line(process: subprocess.Popen) -> tuple[str, int]:
    line = process.stdout.readline().decode()
    assert line.startswith("listening on "), f"unexpected readiness line: {line!r}"
    host, _, port = line.split()[-1].rpartition(":")
    return host, int(port)


def serve_subprocess(data_dir: Path, snapshot_every: int = 0) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--data-dir",
            str(data_dir),
            "--snapshot-every",
            str(snapshot_every),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
    )


class TestKillAndReplay:
    """The acceptance scenario: SIGKILL mid-ingest, restart, compare."""

    SITES = ["LAX", "LAX", "AMS", "AMS", "LAX", "FRA", "LAX", "AMS"]

    def rounds(self, count: int = 200):
        for index in range(count):
            site = self.SITES[index % len(self.SITES)]
            flip = "AMS" if index % 17 == 0 else site
            yield (
                {"x": site, "y": flip, "z": "LAX"},
                T0 + timedelta(hours=index),
            )

    def test_sigkill_mid_ingest_then_replay_matches_oracle(self, tmp_path):
        data_dir = tmp_path / "data"
        process = serve_subprocess(data_dir, snapshot_every=25)
        try:
            host, port = wait_for_port_line(process)
            acked = []
            with ServeClient(host=host, port=port) as client:
                client.create("svc", ["x", "y", "z"])
                for index, (states, when) in enumerate(self.rounds()):
                    if index == 120:
                        # Kill while the stream is mid-flight: no
                        # shutdown hooks, no flush courtesy.
                        process.send_signal(signal.SIGKILL)
                        process.wait(timeout=10)
                    try:
                        client.ingest("svc", states, when)
                    except (ConnectionError, OSError, ValueError):
                        break
                    acked.append((states, when))
        finally:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=10)

        assert len(acked) >= 100, "kill landed before enough rounds were acked"

        # Oracle: an uninterrupted in-memory run over the acked prefix.
        oracle = OnlineFenrir(networks=["x", "y", "z"])
        for states, when in acked:
            oracle.ingest(states, when)
        expected_segments = [
            {"mode_id": mode_id, "start": start.isoformat(), "end": end.isoformat()}
            for mode_id, start, end in oracle.mode_timeline()
        ]

        restarted = serve_subprocess(data_dir)
        try:
            host, port = wait_for_port_line(restarted)
            with ServeClient(host=host, port=port) as client:
                timeline = client.timeline("svc")["segments"]
                summary = client.query("svc")
        finally:
            restarted.send_signal(signal.SIGTERM)
            try:
                restarted.wait(timeout=10)
            except subprocess.TimeoutExpired:
                restarted.kill()
                restarted.wait(timeout=10)

        # Every acknowledged round survived; the server may additionally
        # have journaled rounds whose acks never reached the client.
        assert summary["rounds"] >= len(acked)
        if summary["rounds"] == len(acked):
            assert timeline == expected_segments
        else:
            # Identical on the acked prefix: replay extra tail rounds
            # into the oracle and then demand exact equality.
            extra = summary["rounds"] - len(acked)
            remaining = list(self.rounds())[len(acked): len(acked) + extra]
            for states, when in remaining:
                oracle.ingest(states, when)
            expected_segments = [
                {
                    "mode_id": mode_id,
                    "start": start.isoformat(),
                    "end": end.isoformat(),
                }
                for mode_id, start, end in oracle.mode_timeline()
            ]
            assert timeline == expected_segments

    def test_sigkill_mid_batch_then_replay_matches_oracle(self, tmp_path):
        """Same contract under batched ingest: acked batches survive
        exactly; an in-flight batch may be journaled wholly, partially
        (group commit cut mid-write), or not at all — whatever replays
        must match the oracle extended by the journaled tail."""
        data_dir = tmp_path / "data"
        batch_size = 16
        all_rounds = list(self.rounds(400))
        process = serve_subprocess(data_dir, snapshot_every=25)
        try:
            host, port = wait_for_port_line(process)
            acked = []
            with ServeClient(host=host, port=port) as client:
                client.create("svc", ["x", "y", "z"])
                for start in range(0, len(all_rounds), batch_size):
                    if start == 7 * batch_size:
                        # Kill with a batch about to be in flight.
                        process.send_signal(signal.SIGKILL)
                        process.wait(timeout=10)
                    chunk = all_rounds[start : start + batch_size]
                    try:
                        response = client.ingest_batch("svc", chunk)
                    except (ConnectionError, OSError, ValueError):
                        break
                    assert response["failed"] is None
                    acked.extend(chunk[: response["accepted"]])
        finally:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=10)

        assert len(acked) >= 5 * batch_size, "kill landed too early"

        oracle = OnlineFenrir(networks=["x", "y", "z"])
        for states, when in acked:
            oracle.ingest(states, when)

        restarted = serve_subprocess(data_dir)
        try:
            host, port = wait_for_port_line(restarted)
            with ServeClient(host=host, port=port) as client:
                timeline = client.timeline("svc")["segments"]
                summary = client.query("svc")
        finally:
            restarted.send_signal(signal.SIGTERM)
            try:
                restarted.wait(timeout=10)
            except subprocess.TimeoutExpired:
                restarted.kill()
                restarted.wait(timeout=10)

        # Acked prefix applied; the journal may carry an unacked tail
        # (the killed batch's group commit landed but its ack did not).
        assert summary["rounds"] >= len(acked)
        extra = summary["rounds"] - len(acked)
        assert extra <= batch_size
        for states, when in all_rounds[len(acked): len(acked) + extra]:
            oracle.ingest(states, when)
        expected_segments = [
            {"mode_id": mode_id, "start": start.isoformat(), "end": end.isoformat()}
            for mode_id, start, end in oracle.mode_timeline()
        ]
        assert timeline == expected_segments
