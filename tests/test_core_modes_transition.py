"""Tests for mode discovery and transition matrices."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.modes import find_modes
from repro.core.series import VectorSeries
from repro.core.transition import transition_matrix
from repro.core.vector import UNKNOWN, RoutingVector, StateCatalog


def series_from(maps, t0=datetime(2024, 1, 1)):
    networks = sorted(maps[0])
    series = VectorSeries(networks, StateCatalog())
    for index, mapping in enumerate(maps):
        series.append_mapping(mapping, t0 + timedelta(days=index))
    return series


@pytest.fixture
def recurring_series():
    """A-mode, B-mode, then A-mode again: a recurring routing result."""
    a = {"x": "LAX", "y": "LAX", "z": "AMS"}
    b = {"x": "AMS", "y": "AMS", "z": "LAX"}
    return series_from([a, a, a, b, b, b, a, a])


class TestModes:
    def test_two_modes_with_recurrence(self, recurring_series):
        modes = find_modes(recurring_series)
        assert len(modes) == 2
        first = modes[0]
        assert first.indices == (0, 1, 2, 6, 7)
        assert first.recurring
        assert first.segments == ((0, 2), (6, 7))
        assert not modes[1].recurring
        assert modes.recurring_modes() == [first]

    def test_mode_at(self, recurring_series):
        modes = find_modes(recurring_series)
        assert modes.mode_at(4).mode_id == 1
        assert modes.mode_at(7).mode_id == 0

    def test_phi_within_identical(self, recurring_series):
        modes = find_modes(recurring_series)
        assert modes.phi_within(0) == (1.0, 1.0)

    def test_phi_between_disjoint_states(self, recurring_series):
        modes = find_modes(recurring_series)
        low, high = modes.phi_between(0, 1)
        assert low == high == 0.0

    def test_timeline_chronological(self, recurring_series):
        modes = find_modes(recurring_series)
        timeline = modes.timeline()
        assert [entry[0] for entry in timeline] == [0, 1, 0]
        starts = [entry[1] for entry in timeline]
        assert starts == sorted(starts)

    def test_closest_prior_mode(self):
        a = {"x": "LAX", "y": "LAX", "z": "LAX", "w": "AMS"}
        b = {"x": "AMS", "y": "AMS", "z": "AMS", "w": "LAX"}
        c = {"x": "LAX", "y": "LAX", "z": "AMS", "w": "AMS"}  # 75% like a, 25% like b
        modes = find_modes(series_from([a, a, b, b, c, c]))
        assert len(modes) == 3
        best = modes.closest_prior_mode(2)
        assert best is not None
        prior_id, mean_phi = best
        assert prior_id == 0  # c resembles a more than b
        assert mean_phi == pytest.approx(0.75)
        assert modes.closest_prior_mode(0) is None

    def test_singleton_phi_within(self):
        a = {"x": "A"}
        b = {"x": "B"}
        modes = find_modes(series_from([a, a, b, a, a]), min_cluster_size=1)
        if len(modes) > 1:
            singleton = next(m for m in modes.modes if m.size == 1)
            assert modes.phi_within(singleton.mode_id) == (1.0, 1.0)

    def test_labels_length_mismatch_rejected(self, recurring_series):
        from repro.core.modes import ModeSet

        with pytest.raises(ValueError):
            ModeSet(recurring_series, np.zeros(3), np.zeros((3, 3)), 0.1)


class TestTransitionMatrix:
    def test_quiescent_is_diagonal(self):
        catalog = StateCatalog()
        a = RoutingVector.from_mapping({"x": "A", "y": "B"}, catalog=catalog)
        b = RoutingVector.from_mapping({"x": "A", "y": "B"}, catalog=catalog)
        tm = transition_matrix(a, b)
        assert tm.stayed() == 2.0
        assert tm.moved() == 0.0
        assert tm.row_sums() == a.aggregate()
        assert tm.column_sums() == b.aggregate()

    def test_drain_shows_off_diagonal(self):
        catalog = StateCatalog()
        nets = [f"n{i}" for i in range(10)]
        before = RoutingVector.from_mapping(
            {n: ("STR" if i < 6 else "NAP") for i, n in enumerate(nets)},
            catalog=catalog,
            networks=nets,
        )
        after = RoutingVector.from_mapping(
            {n: ("NAP" if i < 4 else "err" if i < 6 else "NAP") for i, n in enumerate(nets)},
            catalog=catalog,
            networks=nets,
        )
        tm = transition_matrix(before, after)
        assert tm.count("STR", "NAP") == 4
        assert tm.count("STR", "err") == 2
        assert tm.count("NAP", "NAP") == 4
        assert tm.departures_from("STR") == {"NAP": 4.0, "err": 2.0}
        assert tm.arrivals_to("NAP") == {"STR": 4.0}
        assert tm.top_movements(1) == [("STR", "NAP", 4.0)]

    def test_weighted_transitions(self):
        catalog = StateCatalog()
        a = RoutingVector.from_mapping({"x": "A", "y": "A"}, catalog=catalog)
        b = RoutingVector.from_mapping({"x": "B", "y": "A"}, catalog=catalog)
        tm = transition_matrix(a, b, weights=np.array([5.0, 1.0]))
        assert tm.count("A", "B") == 5.0
        assert tm.total == 6.0

    def test_row_sums_equal_initial_aggregate_always(self):
        catalog = StateCatalog()
        a = RoutingVector.from_mapping(
            {"x": "A", "y": UNKNOWN, "z": "err"}, catalog=catalog
        )
        b = RoutingVector.from_mapping(
            {"x": "B", "y": "A", "z": UNKNOWN}, catalog=catalog
        )
        tm = transition_matrix(a, b)
        assert tm.row_sums() == a.aggregate()
        assert tm.column_sums() == b.aggregate()

    def test_unknown_state_rejected_in_count(self):
        catalog = StateCatalog()
        a = RoutingVector.from_mapping({"x": "A"}, catalog=catalog)
        tm = transition_matrix(a, a)
        with pytest.raises(KeyError):
            tm.count("A", "NOPE")

    def test_mismatched_vectors_rejected(self):
        a = RoutingVector.from_mapping({"x": "A"})
        b = RoutingVector.from_mapping({"x": "A"})
        with pytest.raises(ValueError):
            transition_matrix(a, b)  # different catalogs
