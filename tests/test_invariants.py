"""Cross-module invariants and failure-injection integration tests.

These tie the pieces together: Φ must be derivable from the transition
matrix, cleaning must be idempotent, bursty loss must be repairable by
interpolation, and weighting must commute with aggregation.
"""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cleaning import interpolate_series
from repro.core.compare import phi
from repro.core.series import VectorSeries
from repro.core.transition import transition_matrix
from repro.core.vector import UNKNOWN, RoutingVector, StateCatalog

T0 = datetime(2024, 1, 1)

states = st.sampled_from(["A", "B", "C", UNKNOWN])


@st.composite
def vector_pair(draw):
    count = draw(st.integers(min_value=1, max_value=15))
    networks = [f"n{i}" for i in range(count)]
    catalog = StateCatalog()
    a = RoutingVector.from_mapping(
        {n: draw(states) for n in networks}, catalog=catalog, networks=networks
    )
    b = RoutingVector.from_mapping(
        {n: draw(states) for n in networks}, catalog=catalog, networks=networks
    )
    return a, b


class TestPhiTransitionConsistency:
    @given(vector_pair())
    def test_phi_equals_known_diagonal_of_transition(self, pair):
        """Φ·N = trace(T) minus the unknown→unknown cell.

        M(t,t',n) is 1 exactly when the pair sits on a known diagonal
        cell of the transition matrix, so the two §2 definitions must
        agree numerically.
        """
        a, b = pair
        table = transition_matrix(a, b)
        known_diagonal = table.stayed() - table.count(UNKNOWN, UNKNOWN)
        assert phi(a, b) * len(a) == pytest.approx(known_diagonal)

    @given(vector_pair())
    def test_transition_total_is_network_count(self, pair):
        a, b = pair
        assert transition_matrix(a, b).total == len(a)


class TestCleaningMonotonicity:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.lists(states, min_size=3, max_size=3), min_size=2, max_size=12
        ),
        st.integers(min_value=1, max_value=4),
    )
    def test_interpolation_refines_monotonically(self, rows, limit):
        """Re-cleaning never rewrites filled cells, only extends reach.

        Interpolation limits reach relative to *observed* values, so a
        second pass may fill further (filled cells count as observed),
        but it must never change a value the first pass produced.
        """
        networks = ["x", "y", "z"]
        series = VectorSeries(networks, StateCatalog())
        for index, row in enumerate(rows):
            series.append_mapping(
                dict(zip(networks, row)), T0 + timedelta(days=index)
            )
        once = interpolate_series(series, limit=limit)
        twice = interpolate_series(once, limit=limit)
        known_once = once.matrix != 0  # UNKNOWN_CODE == 0
        assert np.array_equal(once.matrix[known_once], twice.matrix[known_once])
        # And the unknown set only shrinks.
        assert np.all(known_once <= (twice.matrix != 0))

    @settings(max_examples=30)
    @given(
        st.lists(
            st.lists(states, min_size=2, max_size=2), min_size=2, max_size=10
        ),
    )
    def test_larger_limit_fills_superset(self, rows):
        networks = ["x", "y"]
        series = VectorSeries(networks, StateCatalog())
        for index, row in enumerate(rows):
            series.append_mapping(
                dict(zip(networks, row)), T0 + timedelta(days=index)
            )
        small = interpolate_series(series, limit=1)
        large = interpolate_series(series, limit=4)
        assert np.all((small.matrix != 0) <= (large.matrix != 0))


class TestFailureInjection:
    def test_bursty_loss_repaired_by_interpolation(self, rng):
        """A Gilbert-Elliott loss burst leaves a gap interpolation closes.

        This is the §2.4 motivation end-to-end: stable routing, bursty
        measurement loss, and cleaning restoring Φ to ~1.
        """
        from repro.measure.loss import GilbertElliott

        loss = GilbertElliott(p_gb=0.05, p_bg=0.4, rng=rng)
        networks = [f"n{i}" for i in range(60)]
        series = VectorSeries(networks, StateCatalog())
        for day in range(30):
            assignment = {}
            for network in networks:
                if not loss.lost():
                    assignment[network] = "LAX"
            series.append_mapping(assignment, T0 + timedelta(days=day))

        raw_phi = np.mean(
            [phi(series[i], series[i + 1]) for i in range(len(series) - 1)]
        )
        cleaned = interpolate_series(series, limit=3)
        cleaned_phi = np.mean(
            [phi(cleaned[i], cleaned[i + 1]) for i in range(len(cleaned) - 1)]
        )
        assert cleaned_phi > raw_phi
        assert cleaned_phi > 0.97

    def test_detection_robust_to_loss_noise(self, rng):
        """Loss noise alone must not trip the detector; a real shift must."""
        from repro.core.detect import detect_events
        from repro.measure.loss import IidLoss

        loss = IidLoss(0.02, rng)
        networks = [f"n{i}" for i in range(200)]
        series = VectorSeries(networks, StateCatalog())
        for day in range(40):
            site = "LAX" if day < 20 else "AMS"
            assignment = {
                n: site for n in networks if not loss.lost()
            }
            series.append_mapping(assignment, T0 + timedelta(days=day))
        cleaned = interpolate_series(series, limit=3)
        events = detect_events(cleaned, threshold=0.3)
        assert len(events) == 1
        assert events[0].start_index == 19


class TestWeightingCommutes:
    def test_weighted_aggregate_matches_manual_sum(self):
        catalog = StateCatalog()
        vector = RoutingVector.from_mapping(
            {"a": "X", "b": "X", "c": "Y"}, catalog=catalog
        )
        weights = np.array([2.0, 3.0, 4.0])
        aggregate = vector.aggregate(weights)
        assert aggregate == {"X": 5.0, "Y": 4.0}

    def test_phi_scale_invariant_in_weights(self):
        catalog = StateCatalog()
        networks = ["a", "b", "c"]
        x = RoutingVector.from_mapping(
            {"a": "X", "b": "Y", "c": "X"}, catalog=catalog, networks=networks
        )
        y = RoutingVector.from_mapping(
            {"a": "X", "b": "X", "c": "X"}, catalog=catalog, networks=networks
        )
        weights = np.array([1.0, 5.0, 2.0])
        assert phi(x, y, weights=weights) == pytest.approx(
            phi(x, y, weights=weights * 17.0)
        )


class TestUserWeightedWikipedia:
    def test_user_weights_change_drain_impact(self):
        """§2.5: weighting by users changes how big the drain *feels*.

        If codfw's clients happen to carry most users, a user-weighted
        Φ dips further during the drain than the unweighted one.
        """
        from repro.core.weighting import table_weights
        from repro.datasets import wikipedia

        study = wikipedia.generate(num_prefixes=400, cadence=timedelta(days=2))
        series = study.series
        pre = series.index_at(wikipedia.DRAIN_START - timedelta(days=1))
        during = series.index_at(wikipedia.DRAIN_START + timedelta(days=1))

        # Put 10 users on codfw clients and 1 elsewhere.
        baseline = series[pre].to_mapping()
        users = {
            network: 10.0 if site == "codfw" else 1.0
            for network, site in baseline.items()
        }
        weights = table_weights(series.networks, users, default=1.0)
        unweighted = phi(series[pre], series[during])
        weighted = phi(series[pre], series[during], weights=weights)
        assert weighted < unweighted
