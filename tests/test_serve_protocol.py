"""Unit tests for the length-prefixed JSON frame protocol."""

from __future__ import annotations

import struct

import pytest

from repro.serve.protocol import (
    FrameError,
    FrameTooLarge,
    decode_payload,
    encode_frame,
    error_response,
)


class TestFrames:
    def test_round_trip(self):
        frame = encode_frame({"cmd": "stats", "id": 1})
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == {"cmd": "stats", "id": 1}

    def test_encode_rejects_oversized(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"blob": "x" * 100}, max_frame=50)

    def test_decode_rejects_bad_json(self):
        with pytest.raises(FrameError, match="undecodable"):
            decode_payload(b"{not json")

    def test_decode_rejects_bad_utf8(self):
        with pytest.raises(FrameError, match="undecodable"):
            decode_payload(b"\xff\xfe\x00")

    def test_decode_rejects_non_object(self):
        with pytest.raises(FrameError, match="JSON object"):
            decode_payload(b"[1,2,3]")

    def test_error_response_shape(self):
        response = error_response("overloaded", "queue full", 7, queue_depth=3)
        assert response == {
            "id": 7,
            "ok": False,
            "error": "overloaded",
            "message": "queue full",
            "queue_depth": 3,
        }
