"""Tests for website front-end fleets and EDNS-CS mapping."""

from __future__ import annotations

import random
from datetime import datetime, timedelta

import pytest

from repro.net.addr import IPv4Prefix, parse_prefix
from repro.net.geo import city
from repro.webmap.frontends import ChurnFleet, GeoFleet, GeoSite, stable_fraction
from repro.webmap.mapper import EcsMapper

T0 = datetime(2025, 3, 15)
P1 = parse_prefix("30.0.0.0/24")
P2 = parse_prefix("30.0.1.0/24")


class TestStableFraction:
    def test_deterministic(self):
        assert stable_fraction("a", 1) == stable_fraction("a", 1)

    def test_distinct_keys_differ(self):
        values = {stable_fraction("k", i) for i in range(100)}
        assert len(values) == 100

    def test_range(self):
        for i in range(200):
            assert 0.0 <= stable_fraction("x", i) < 1.0

    def test_roughly_uniform(self):
        values = [stable_fraction("u", i) for i in range(2000)]
        below_half = sum(1 for v in values if v < 0.5)
        assert 900 < below_half < 1100


@pytest.fixture
def geo_fleet():
    return GeoFleet(
        sites=[
            GeoSite("eqiad", city("EQIAD")),
            GeoSite("codfw", city("CODFW")),
            GeoSite("esams", city("ESAMS")),
        ]
    )


class TestGeoFleet:
    def test_nearest_site_wins(self, geo_fleet):
        assert geo_fleet.select(P1, city("NYC"), T0) == "eqiad"
        assert geo_fleet.select(P1, city("MEX"), T0) == "codfw"
        assert geo_fleet.select(P1, city("LHR"), T0) == "esams"

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            GeoFleet(sites=[GeoSite("a", city("NYC")), GeoSite("a", city("LHR"))])

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            GeoFleet(sites=[])

    def test_drain_moves_clients(self, geo_fleet):
        geo_fleet.add_drain("codfw", T0, T0 + timedelta(days=7))
        during = geo_fleet.select(P1, city("MEX"), T0 + timedelta(days=1))
        assert during != "codfw"
        after = geo_fleet.select(P1, city("MEX"), T0 + timedelta(days=8))
        # With full return, clients come back.
        assert after == "codfw"

    def test_drain_unknown_site_rejected(self, geo_fleet):
        with pytest.raises(KeyError):
            geo_fleet.add_drain("nope", T0, T0 + timedelta(days=1))

    def test_partial_return_is_sticky(self, geo_fleet):
        geo_fleet.add_drain("codfw", T0, T0 + timedelta(days=7), return_fraction=0.3)
        prefixes = [IPv4Prefix(P1.network + (i << 8), 24) for i in range(300)]
        after = T0 + timedelta(days=10)
        codfw_clients = [
            p for p in prefixes if GeoFleet(geo_fleet.sites).select(p, city("MEX"), after) == "codfw"
        ]
        returned = sum(
            1 for p in codfw_clients if geo_fleet.select(p, city("MEX"), after) == "codfw"
        )
        assert 0.2 < returned / len(codfw_clients) < 0.4

    def test_return_fraction_validation(self, geo_fleet):
        with pytest.raises(ValueError):
            geo_fleet.add_drain("codfw", T0, T0 + timedelta(days=1), return_fraction=1.5)

    def test_border_flux_flips_some_clients_daily(self):
        fleet = GeoFleet(
            sites=[GeoSite("eqiad", city("EQIAD")), GeoSite("codfw", city("CODFW"))],
            border_flux=0.5,
            epoch=T0,
        )
        prefixes = [IPv4Prefix(P1.network + (i << 8), 24) for i in range(200)]
        day0 = {str(p): fleet.select(p, city("NYC"), T0) for p in prefixes}
        day1 = {str(p): fleet.select(p, city("NYC"), T0 + timedelta(days=1)) for p in prefixes}
        changed = sum(1 for k in day0 if day0[k] != day1[k])
        assert changed > 0

    def test_selection_deterministic(self, geo_fleet):
        a = geo_fleet.select(P1, city("NYC"), T0)
        b = geo_fleet.select(P1, city("NYC"), T0)
        assert a == b


class TestChurnFleet:
    @pytest.fixture
    def fleet(self):
        return ChurnFleet(num_frontends=500, epoch=T0, era="test")

    def test_same_day_stable(self, fleet):
        assert fleet.select(P1, T0) == fleet.select(P1, T0)

    def test_distinct_eras_share_nothing(self):
        a = ChurnFleet(num_frontends=500, epoch=T0, era="era1")
        b = ChurnFleet(num_frontends=500, epoch=T0, era="era2")
        prefixes = [IPv4Prefix(P1.network + (i << 8), 24) for i in range(100)]
        labels_a = {a.select(p, T0) for p in prefixes}
        labels_b = {b.select(p, T0) for p in prefixes}
        assert labels_a.isdisjoint(labels_b)

    def test_within_week_similarity_close_to_paper(self, fleet):
        prefixes = [IPv4Prefix(P1.network + (i << 8), 24) for i in range(800)]
        day1 = [fleet.select(p, T0 + timedelta(days=1)) for p in prefixes]
        day2 = [fleet.select(p, T0 + timedelta(days=2)) for p in prefixes]
        same = sum(1 for a, b in zip(day1, day2) if a == b) / len(prefixes)
        assert 0.70 < same < 0.90  # paper: ~0.79

    def test_cross_week_similarity_close_to_paper(self, fleet):
        prefixes = [IPv4Prefix(P1.network + (i << 8), 24) for i in range(800)]
        week1 = [fleet.select(p, T0 + timedelta(days=1)) for p in prefixes]
        week3 = [fleet.select(p, T0 + timedelta(days=15)) for p in prefixes]
        same = sum(1 for a, b in zip(week1, week3) if a == b) / len(prefixes)
        assert 0.15 < same < 0.40  # paper: ~0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnFleet(num_frontends=0, epoch=T0)
        with pytest.raises(ValueError):
            ChurnFleet(num_frontends=5, epoch=T0, stable_share=2.0)
        with pytest.raises(ValueError):
            ChurnFleet(num_frontends=5, epoch=T0, daily_change=-0.1)

    def test_frontend_address_deterministic(self, fleet):
        label = fleet.select(P1, T0)
        assert fleet.frontend_address(label) == fleet.frontend_address(label)


class TestEcsMapper:
    def make_mapper(self, failure=0.0):
        fleet = ChurnFleet(num_frontends=50, epoch=T0, era="m")
        return EcsMapper(
            hostname="www.example.com",
            select=fleet.select,
            rng=random.Random(5),
            query_failure_probability=failure,
        ), fleet

    def test_measure_matches_fleet(self):
        mapper, fleet = self.make_mapper()
        prefixes = [IPv4Prefix(P1.network + (i << 8), 24) for i in range(40)]
        observations = mapper.measure(T0, prefixes)
        assert len(observations) == 40
        for prefix in prefixes:
            assert observations[str(prefix)] == fleet.select(prefix, T0)

    def test_failures_leave_gaps(self):
        mapper, _fleet = self.make_mapper(failure=0.5)
        prefixes = [IPv4Prefix(P1.network + (i << 8), 24) for i in range(100)]
        observations = mapper.measure(T0, prefixes)
        assert 20 < len(observations) < 80

    def test_no_passthrough_collapses_catchments(self):
        # A resolver that strips ECS answers for its own prefix: every
        # client appears to map to the same front end — the measurement
        # pitfall the method must avoid.
        mapper, _fleet = self.make_mapper()
        prefixes = [IPv4Prefix(P1.network + (i << 8), 24) for i in range(30)]
        observations = mapper.measure(T0, prefixes, ecs_passthrough=False)
        assert len(set(observations.values())) == 1

    def test_queries_counted(self):
        mapper, _fleet = self.make_mapper()
        prefixes = [IPv4Prefix(P1.network + (i << 8), 24) for i in range(10)]
        mapper.measure(T0, prefixes)
        assert mapper.queries_sent == 10
