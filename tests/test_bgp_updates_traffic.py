"""Tests for BGP update streams, synthetic traffic, and NSID identification."""

from __future__ import annotations

import random
from datetime import timedelta

import pytest

from repro.bgp.clients import allocate_clients, synthetic_traffic
from repro.bgp.events import RoutingScenario, SiteDrain
from repro.bgp.policy import Announcement
from repro.bgp.updates import UpdateMessage, diff_outcomes, update_stream
from repro.net.addr import parse_prefix

PREFIX = parse_prefix("192.0.2.0/24")


@pytest.fixture
def scenario(small_topology):
    return RoutingScenario(
        small_topology,
        [Announcement(origin=21, label="A"), Announcement(origin=23, label="B")],
    )


class TestUpdateMessage:
    def test_announce_line_round_trip(self):
        update = UpdateMessage(7, PREFIX, True, (7, 2, 9), 1700000000)
        assert UpdateMessage.from_line(update.to_line()) == update

    def test_withdraw_line_round_trip(self):
        update = UpdateMessage(7, PREFIX, False, (), 5)
        assert UpdateMessage.from_line(update.to_line()) == update

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            UpdateMessage.from_line("TABLE_DUMP2|1|B|x")
        with pytest.raises(ValueError):
            UpdateMessage.from_line("BGP4MP|1|X|7|192.0.2.0/24|")
        with pytest.raises(ValueError):
            UpdateMessage.from_line("BGP4MP|1|A|7|192.0.2.0/24|")  # no path


class TestDiffOutcomes:
    def test_session_reset_announces_everything(self, scenario, t0):
        outcome = scenario.outcome_at(t0)
        updates = diff_outcomes(None, outcome, [22, 13], PREFIX)
        assert len(updates) == 2
        assert all(u.announce for u in updates)

    def test_no_change_is_silent(self, scenario, t0):
        outcome = scenario.outcome_at(t0)
        assert diff_outcomes(outcome, outcome, [22, 13], PREFIX) == []

    def test_path_change_announces(self, scenario, t0):
        before = scenario.outcome_at(t0)
        scenario.add_event(SiteDrain("A", t0 + timedelta(days=1), t0 + timedelta(days=2)))
        after = scenario.outcome_at(t0 + timedelta(days=1))
        updates = diff_outcomes(before, after, [11], PREFIX)
        assert len(updates) == 1
        assert updates[0].announce
        assert updates[0].as_path == after[11].path

    def test_lost_route_withdraws(self, small_topology, t0):
        scenario = RoutingScenario(
            small_topology, [Announcement(origin=21, label="A")]
        )
        before = scenario.outcome_at(t0)
        from repro.bgp.events import LinkRemove

        scenario.add_event(LinkRemove(11, 21, t0 + timedelta(days=1)))
        after = scenario.outcome_at(t0 + timedelta(days=1))
        updates = diff_outcomes(before, after, sorted(small_topology.nodes), PREFIX)
        withdrawals = [u for u in updates if not u.announce]
        assert withdrawals  # the partitioned side withdraws

    def test_update_stream_first_time_announces(self, scenario, t0):
        times = [t0, t0 + timedelta(days=1)]
        stream = list(update_stream(scenario, [22, 13], times, PREFIX))
        assert len(stream) == 2  # initial announcements, then silence
        assert all(u.announce for u in stream)

    def test_update_stream_captures_event(self, scenario, t0):
        scenario.add_event(SiteDrain("A", t0 + timedelta(days=1), t0 + timedelta(days=2)))
        times = [t0 + timedelta(days=offset) for offset in range(3)]
        stream = list(update_stream(scenario, [11], times, PREFIX))
        # initial announce, drain-induced announce, revert announce.
        assert len(stream) == 3
        assert stream[1].timestamp > stream[0].timestamp


class TestSyntheticTraffic:
    def test_total_volume_and_skew(self, rng):
        clients = allocate_clients([1], [100])
        table = synthetic_traffic(rng, clients.blocks, total_volume=1000.0)
        assert sum(table.values()) == pytest.approx(1000.0)
        values = sorted(table.values(), reverse=True)
        assert values[0] > 10 * values[-1]  # heavy tail

    def test_keys_match_network_ids(self, rng):
        clients = allocate_clients([1], [5])
        table = synthetic_traffic(rng, clients.blocks)
        assert set(table) == set(clients.network_ids())

    def test_empty(self, rng):
        assert synthetic_traffic(rng, []) == {}

    def test_traffic_weighting_changes_phi(self, rng, t0):
        """Traffic weights make Φ sensitive to *which* networks moved."""
        from repro.core import VectorSeries, phi
        from repro.core.vector import StateCatalog
        from repro.core.weighting import table_weights

        clients = allocate_clients([1], [50])
        table = synthetic_traffic(rng, clients.blocks)
        heaviest = max(table, key=table.get)
        series = VectorSeries(clients.network_ids(), StateCatalog())
        base = {n: "X" for n in clients.network_ids()}
        moved = dict(base)
        moved[heaviest] = "Y"
        series.append_mapping(base, t0)
        series.append_mapping(moved, t0 + timedelta(days=1))
        weights = table_weights(series.networks, table)
        unweighted = phi(series[0], series[1])
        weighted = phi(series[0], series[1], weights=weights)
        assert weighted < unweighted  # the heavy block dominates


class TestNsidAtlas:
    def test_nsid_fleet_matches_chaos_fleet(self, small_topology, t0, rng):
        from repro.anycast.atlas import AtlasFleet, AtlasVP
        from repro.anycast.service import AnycastService, AnycastSite
        from repro.net.geo import city

        sites = [
            AnycastSite("A", 21, city("ORD")),
            AnycastSite("B", 23, city("FRA")),
        ]
        service = AnycastService(small_topology, sites)
        vps = [AtlasVP(0, 22), AtlasVP(1, 13)]
        chaos = AtlasFleet(service, vps, random.Random(1), method="chaos")
        nsid = AtlasFleet(service, vps, random.Random(1), method="nsid")
        assert chaos.measure(t0) == nsid.measure(t0)

    def test_unknown_method_rejected(self, small_topology, rng):
        from repro.anycast.atlas import AtlasFleet, AtlasVP
        from repro.anycast.service import AnycastService, AnycastSite
        from repro.net.geo import city

        service = AnycastService(
            small_topology, [AnycastSite("A", 21, city("ORD"))]
        )
        with pytest.raises(ValueError):
            AtlasFleet(service, [AtlasVP(0, 22)], rng, method="telnet")


class TestNsidWireFormat:
    def test_request_response_round_trip(self):
        from repro.dns.edns import add_nsid_request, add_nsid_response, extract_nsid
        from repro.dns.message import DnsMessage, Question, TYPE_A

        query = DnsMessage()
        query.questions.append(Question("example.com", TYPE_A))
        add_nsid_request(query)
        decoded_query = DnsMessage.decode(query.encode())
        assert extract_nsid(decoded_query) == ""  # empty = "identify yourself"

        response = DnsMessage(is_response=True)
        add_nsid_response(response, "b1-lax")
        decoded = DnsMessage.decode(response.encode())
        assert extract_nsid(decoded) == "b1-lax"

    def test_nsid_coexists_with_ecs(self):
        from repro.dns.edns import (
            add_client_subnet,
            add_nsid_response,
            extract_client_subnet,
            extract_nsid,
        )
        from repro.dns.message import DnsMessage

        message = DnsMessage()
        add_client_subnet(message, parse_prefix("10.0.0.0/24"))
        add_nsid_response(message, "server-7")
        decoded = DnsMessage.decode(message.encode())
        assert extract_nsid(decoded) == "server-7"
        ecs = extract_client_subnet(decoded)
        assert ecs is not None and str(ecs.prefix) == "10.0.0.0/24"

    def test_absent_nsid_is_none(self):
        from repro.dns.edns import extract_nsid
        from repro.dns.message import DnsMessage

        assert extract_nsid(DnsMessage()) is None
