"""Batched ingest and incremental checkpoints on DurableMonitor.

Two contracts under test:

* ``ingest_batch`` ≡ sequential ``ingest`` — same updates, *identical
  journal bytes*, same replay state — with the valid-prefix partial
  failure semantics on top;
* periodic checkpoints write O(delta) bytes (delta segments), not a
  full re-serialization of the history, and fold back losslessly on
  recovery and compaction.
"""

from __future__ import annotations

import json
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.online import OnlineFenrir
from repro.serve.journal import JOURNAL_FILE, SNAPSHOT_FILE, read_snapshot
from repro.serve.monitor import DurableMonitor, MonitorError

BASE = datetime(2025, 1, 1)
NETWORKS = ["n0", "n1", "n2", "n3", "n4"]
SITES = ["LAX", "MIA", "AMS"]


def make_rounds(count, start=0, seed=0, networks=NETWORKS):
    rng = np.random.default_rng(seed)
    return [
        (
            {n: SITES[int(rng.integers(0, len(SITES)))] for n in networks},
            BASE + timedelta(hours=start + i),
        )
        for i in range(count)
    ]


class TestBatchEquivalence:
    def test_batch_equals_sequential(self, tmp_path):
        rounds = make_rounds(40)
        seq_monitor = DurableMonitor.create(tmp_path, "seq", networks=NETWORKS)
        for states, when in rounds:
            seq_monitor.ingest(states, when)
        batch_monitor = DurableMonitor.create(tmp_path, "bat", networks=NETWORKS)
        result = batch_monitor.ingest_batch(rounds)

        assert result.error_index is None
        assert result.accepted == len(rounds)
        assert list(result.updates) == seq_monitor.tracker.updates
        assert batch_monitor.seq == seq_monitor.seq
        assert (
            batch_monitor.tracker.to_state() == seq_monitor.tracker.to_state()
        )

    def test_journal_bytes_identical(self, tmp_path):
        rounds = make_rounds(25)
        seq_monitor = DurableMonitor.create(tmp_path, "seq", networks=NETWORKS)
        for states, when in rounds:
            seq_monitor.ingest(states, when)
        batch_monitor = DurableMonitor.create(tmp_path, "bat", networks=NETWORKS)
        batch_monitor.ingest_batch(rounds)

        seq_bytes = (tmp_path / "seq" / JOURNAL_FILE).read_bytes()
        batch_bytes = (tmp_path / "bat" / JOURNAL_FILE).read_bytes()
        assert seq_bytes == batch_bytes

    def test_replay_state_identical(self, tmp_path):
        rounds = make_rounds(30)
        monitor = DurableMonitor.create(tmp_path, "m", networks=NETWORKS)
        monitor.ingest_batch(rounds)
        monitor.close()

        oracle = OnlineFenrir(networks=NETWORKS)
        for states, when in rounds:
            oracle.ingest(states, when)

        reopened = DurableMonitor.open(tmp_path, "m")
        assert reopened.tracker.to_state() == oracle.to_state()
        assert reopened.seq == len(rounds)
        reopened.close()

    def test_batches_compose_with_single_ingests(self, tmp_path):
        rounds = make_rounds(30)
        monitor = DurableMonitor.create(tmp_path, "m", networks=NETWORKS)
        monitor.ingest(*rounds[0])
        monitor.ingest_batch(rounds[1:20])
        monitor.ingest(*rounds[20])
        monitor.ingest_batch(rounds[21:])
        oracle = OnlineFenrir(networks=NETWORKS)
        for states, when in rounds:
            oracle.ingest(states, when)
        assert monitor.tracker.to_state() == oracle.to_state()
        assert monitor.seq == len(rounds)

    def test_empty_batch(self, tmp_path):
        monitor = DurableMonitor.create(tmp_path, "m", networks=NETWORKS)
        result = monitor.ingest_batch([])
        assert result.accepted == 0
        assert result.error_index is None
        assert monitor.seq == 0


class TestBatchPartialFailure:
    def test_invalid_states_mid_batch(self, tmp_path):
        rounds = make_rounds(10)
        rounds[6] = ({"n0": 42}, rounds[6][1])  # non-string label
        monitor = DurableMonitor.create(tmp_path, "m", networks=NETWORKS)
        result = monitor.ingest_batch(rounds)
        assert result.accepted == 6
        assert result.error_index == 6
        assert result.error_kind == "invalid_states"
        assert monitor.seq == 6
        # the durable prefix is exactly the accepted records
        monitor.close()
        reopened = DurableMonitor.open(tmp_path, "m")
        assert len(reopened.tracker.updates) == 6
        reopened.close()

    def test_out_of_order_mid_batch(self, tmp_path):
        rounds = make_rounds(10)
        rounds[4] = (rounds[4][0], rounds[2][1])  # time goes backwards
        monitor = DurableMonitor.create(tmp_path, "m", networks=NETWORKS)
        result = monitor.ingest_batch(rounds)
        assert result.accepted == 4
        assert result.error_index == 4
        assert result.error_kind == "out_of_order"
        assert "move forward in time" in result.error

    def test_first_record_older_than_monitor(self, tmp_path):
        rounds = make_rounds(5)
        monitor = DurableMonitor.create(tmp_path, "m", networks=NETWORKS)
        monitor.ingest_batch(rounds)
        result = monitor.ingest_batch(rounds)  # same times again
        assert result.accepted == 0
        assert result.error_index == 0
        assert result.error_kind == "out_of_order"

    def test_prefix_before_failure_is_applied_and_durable(self, tmp_path):
        rounds = make_rounds(8)
        bad = rounds[:5] + [({"n0": None}, rounds[5][1])] + rounds[6:]
        monitor = DurableMonitor.create(tmp_path, "m", networks=NETWORKS)
        monitor.ingest_batch(bad)
        oracle = OnlineFenrir(networks=NETWORKS)
        for states, when in rounds[:5]:
            oracle.ingest(states, when)
        monitor.close()
        reopened = DurableMonitor.open(tmp_path, "m")
        assert reopened.tracker.to_state() == oracle.to_state()
        reopened.close()


class TestIncrementalCheckpoints:
    def test_cadence_writes_delta_segments(self, tmp_path):
        monitor = DurableMonitor.create(
            tmp_path, "m", networks=NETWORKS, snapshot_every=10
        )
        monitor.ingest_batch(make_rounds(35))
        deltas = sorted((tmp_path / "m").glob("delta-*.json"))
        assert len(deltas) == 1  # one batch crossing the cadence once
        monitor.ingest_batch(make_rounds(10, start=35))
        deltas = sorted((tmp_path / "m").glob("delta-*.json"))
        assert len(deltas) == 2

    def test_checkpoint_cost_does_not_grow_with_history(self, tmp_path):
        """The delta written after a long history is no bigger than one
        written early: checkpoint cost is O(rounds since checkpoint),
        not O(total rounds)."""
        monitor = DurableMonitor.create(
            tmp_path, "m", networks=NETWORKS, snapshot_every=100
        )
        for chunk_start in range(0, 3000, 100):
            monitor.ingest_batch(make_rounds(100, start=chunk_start))
        deltas = sorted((tmp_path / "m").glob("delta-*.json"))
        assert len(deltas) == 30
        sizes = [path.stat().st_size for path in deltas]
        # every delta covers 100 rounds; the last (written with 3000
        # rounds of history behind it) must not have absorbed that
        # history
        assert max(sizes) < 2 * min(sizes)
        full_size = len(
            json.dumps(monitor.tracker.to_state(), separators=(",", ":"))
        )
        assert max(sizes) < full_size / 5
        monitor.close()

    def test_recovery_folds_deltas(self, tmp_path):
        rounds = make_rounds(250)
        monitor = DurableMonitor.create(
            tmp_path, "m", networks=NETWORKS, snapshot_every=50
        )
        monitor.ingest_batch(rounds[:120])
        monitor.ingest_batch(rounds[120:])
        monitor.close()
        oracle = OnlineFenrir(networks=NETWORKS)
        for states, when in rounds:
            oracle.ingest(states, when)
        reopened = DurableMonitor.open(tmp_path, "m")
        assert reopened.tracker.to_state() == oracle.to_state()
        assert reopened.seq == len(rounds)
        reopened.close()

    def test_recovery_folds_deltas_plus_journal_tail(self, tmp_path):
        """Rounds after the last checkpoint live only in the journal;
        recovery must fold deltas *and* replay the journal tail."""
        rounds = make_rounds(130)
        monitor = DurableMonitor.create(
            tmp_path, "m", networks=NETWORKS, snapshot_every=50
        )
        monitor.ingest_batch(rounds[:100])  # crosses the cadence: checkpoint
        monitor.ingest_batch(rounds[100:])  # 30 rounds, journal only
        assert (tmp_path / "m" / JOURNAL_FILE).stat().st_size > 0
        monitor.close()
        oracle = OnlineFenrir(networks=NETWORKS)
        for states, when in rounds:
            oracle.ingest(states, when)
        reopened = DurableMonitor.open(tmp_path, "m")
        assert reopened.tracker.to_state() == oracle.to_state()
        reopened.close()

    def test_explicit_snapshot_compacts(self, tmp_path):
        monitor = DurableMonitor.create(
            tmp_path, "m", networks=NETWORKS, snapshot_every=20
        )
        monitor.ingest_batch(make_rounds(75))
        assert list((tmp_path / "m").glob("delta-*.json"))
        monitor.snapshot()
        assert not list((tmp_path / "m").glob("delta-*.json"))
        assert (tmp_path / "m" / JOURNAL_FILE).stat().st_size == 0
        seq, state = read_snapshot(tmp_path / "m")
        assert seq == 75
        assert state == monitor.tracker.to_state()
        monitor.close()

    def test_checkpoint_after_reopen_keeps_chain_consistent(self, tmp_path):
        """Replayed journal rounds are not yet in the checkpoint chain;
        the first checkpoint after a reopen must fold them in."""
        rounds = make_rounds(60)
        monitor = DurableMonitor.create(tmp_path, "m", networks=NETWORKS)
        monitor.ingest_batch(rounds)  # journal only, no checkpoints
        monitor.close()
        reopened = DurableMonitor.open(tmp_path, "m")
        reopened.checkpoint()
        reopened.close()
        recovered = DurableMonitor.open(tmp_path, "m")
        oracle = OnlineFenrir(networks=NETWORKS)
        for states, when in rounds:
            oracle.ingest(states, when)
        assert recovered.tracker.to_state() == oracle.to_state()
        recovered.close()

    def test_snapshot_file_untouched_by_cadence(self, tmp_path):
        """Periodic checkpoints must not rewrite the base snapshot —
        that is the O(rounds²) behaviour being removed."""
        monitor = DurableMonitor.create(
            tmp_path, "m", networks=NETWORKS, snapshot_every=10
        )
        base_bytes = (tmp_path / "m" / SNAPSHOT_FILE).read_bytes()
        monitor.ingest_batch(make_rounds(50))
        assert (tmp_path / "m" / SNAPSHOT_FILE).read_bytes() == base_bytes
        monitor.close()


class TestCreateValidation:
    def test_bad_weights_fail_before_directory_exists(self, tmp_path):
        with pytest.raises(ValueError, match="shape"):
            DurableMonitor.create(
                tmp_path, "bad", networks=NETWORKS, weights=[1.0, 2.0]
            )
        assert not (tmp_path / "bad").exists()

    def test_negative_weights_fail_before_directory_exists(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            DurableMonitor.create(
                tmp_path, "bad", networks=NETWORKS, weights=[-1.0] * len(NETWORKS)
            )
        assert not (tmp_path / "bad").exists()

    def test_bad_threshold_fails_before_directory_exists(self, tmp_path):
        with pytest.raises(ValueError):
            DurableMonitor.create(
                tmp_path, "bad", networks=NETWORKS, event_threshold=3.0
            )
        assert not (tmp_path / "bad").exists()

    def test_good_weights_round_trip(self, tmp_path):
        weights = [2.0, 1.0, 1.0, 0.5, 3.0]
        monitor = DurableMonitor.create(
            tmp_path, "m", networks=NETWORKS, weights=weights
        )
        monitor.ingest_batch(make_rounds(10))
        monitor.close()
        reopened = DurableMonitor.open(tmp_path, "m")
        assert list(reopened.tracker.weights) == weights
        assert reopened.tracker.to_state() == monitor.tracker.to_state()
        reopened.close()

    def test_duplicate_name_still_rejected(self, tmp_path):
        DurableMonitor.create(tmp_path, "m", networks=NETWORKS).close()
        with pytest.raises(MonitorError, match="exists"):
            DurableMonitor.create(tmp_path, "m", networks=NETWORKS)


class TestDescribeCounters:
    def test_describe_matches_rescan(self, tmp_path):
        monitor = DurableMonitor.create(tmp_path, "m", networks=NETWORKS)
        monitor.ingest_batch(make_rounds(50))
        description = monitor.describe()
        assert description["events"] == len(monitor.tracker.events())
        assert description["recurrences"] == len(monitor.tracker.recurrences())
        assert description["rounds"] == 50
        monitor.close()
