"""Additional property tests and leftover-path coverage."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import adaptive_clusters, cut_linkage, hac_linkage
from repro.core.compare import phi, similarity_matrix
from repro.core.series import VectorSeries
from repro.core.vector import UNKNOWN, StateCatalog

T0 = datetime(2025, 1, 1)


@st.composite
def random_series_and_weights(draw):
    num_networks = draw(st.integers(min_value=2, max_value=10))
    num_rounds = draw(st.integers(min_value=2, max_value=6))
    networks = [f"n{i}" for i in range(num_networks)]
    series = VectorSeries(networks, StateCatalog())
    states = ["A", "B", "C", UNKNOWN]
    for round_index in range(num_rounds):
        assignment = {
            n: draw(st.sampled_from(states)) for n in networks
        }
        series.append_mapping(assignment, T0 + timedelta(days=round_index))
    weights = np.array(
        [draw(st.floats(min_value=0.1, max_value=10.0)) for _ in networks]
    )
    return series, weights


class TestWeightedSimilarityProperty:
    @settings(max_examples=40, deadline=None)
    @given(random_series_and_weights())
    def test_matrix_matches_pairwise_weighted_phi(self, data):
        series, weights = data
        matrix = similarity_matrix(series, weights=weights)
        for i in range(len(series)):
            for j in range(len(series)):
                expected = phi(series[i], series[j], weights=weights)
                assert matrix[i, j] == pytest.approx(expected)

    @settings(max_examples=40, deadline=None)
    @given(random_series_and_weights())
    def test_matrix_symmetric(self, data):
        series, weights = data
        matrix = similarity_matrix(series, weights=weights)
        assert np.allclose(matrix, matrix.T)


class TestAdaptiveThresholdMinimality:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_threshold_is_first_qualifying(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 1, 20)
        distance = np.abs(points[:, None] - points[None, :])
        linkage = hac_linkage(distance, "single")
        result = adaptive_clusters(distance, method="single", linkage=linkage)

        def qualifies(threshold: float) -> bool:
            labels = cut_linkage(linkage, threshold)
            counts = np.bincount(labels)
            return len(counts) < 15 and counts.min() >= 2

        assert qualifies(result.threshold)
        # No earlier grid threshold qualifies.
        grid = np.arange(0.0, result.threshold - 1e-9, 0.01)
        for threshold in grid:
            assert not qualifies(float(threshold))


class TestLeftoverPaths:
    def test_te_on_missing_site_is_noop(self, small_topology, t0):
        from repro.bgp.events import RoutingScenario, TrafficEngineering
        from repro.bgp.policy import Announcement

        scenario = RoutingScenario(
            small_topology, [Announcement(origin=21, label="A")]
        )
        scenario.add_event(
            TrafficEngineering("GHOST", 11, 3, t0, t0 + timedelta(days=1))
        )
        _topo, anns, _down = scenario.configuration_at(t0)
        assert [a.label for a in anns] == ["A"]

    def test_mode_timeline_roman_fallback(self):
        from repro.core.modes import find_modes
        from repro.core.viz import render_mode_timeline

        series = VectorSeries(["x"], StateCatalog())
        # 20 modes of 2 observations each, all mutually dissimilar.
        for index in range(40):
            series.append_mapping({"x": f"S{index // 2}"}, T0 + timedelta(days=index))
        modes = find_modes(series, max_clusters=25, min_cluster_size=2)
        text = render_mode_timeline(modes)
        assert "mode (15)" in text or "mode (xv)" in text

    def test_online_with_weights(self):
        from repro.core.online import OnlineFenrir

        tracker = OnlineFenrir(
            networks=["big", "small"], weights=np.array([10.0, 1.0]),
            event_threshold=0.5,
        )
        tracker.ingest({"big": "X", "small": "X"}, T0)
        update = tracker.ingest({"big": "X", "small": "Y"}, T0 + timedelta(days=1))
        assert not update.is_event  # the light network moving is sub-threshold
        update = tracker.ingest({"big": "Y", "small": "Y"}, T0 + timedelta(days=2))
        assert update.is_event  # the heavy one counts

    def test_explain_uses_report_weights(self):
        from repro.core import Fenrir, explain_event

        fenrir = Fenrir(weight_fn=lambda networks: np.array([10.0, 1.0, 1.0]))
        series = VectorSeries(["a", "b", "c"], StateCatalog())
        for day in range(6):
            state = "X" if day < 3 else "Y"
            series.append_mapping(
                {"a": state, "b": "X", "c": "X"}, T0 + timedelta(days=day)
            )
        report = fenrir.run(series)
        explanation = explain_event(report, report.events[0])
        # Only 'a' (weight 10 of 12) moved.
        assert explanation.moved_fraction == pytest.approx(10 / 12)

    def test_country_series_vantage_with_no_route(self, small_topology, t0):
        from repro.bgp.events import LinkRemove, RoutingScenario
        from repro.bgp.policy import Announcement
        from repro.controlplane.collector import RouteCollector
        from repro.controlplane.country import country_series

        scenario = RoutingScenario(
            small_topology, [Announcement(origin=23, label="X")]
        )
        scenario.add_event(LinkRemove(11, 21, t0 - timedelta(days=1)))
        collector = RouteCollector(scenario, vantages=[21, 22])
        series = country_series(collector, {13, 23}, [t0])
        assert series[0].state_of("as21") == UNKNOWN  # partitioned vantage
        assert series[0].state_of("as22") != UNKNOWN

    def test_hitlist_refresh_drift_bounded(self, rng):
        from repro.net.addr import IPv4Prefix
        from repro.net.hitlist import Hitlist

        blocks = [IPv4Prefix((10 << 24) + (i << 8), 24) for i in range(100)]
        original = Hitlist.from_blocks(blocks, rng)
        refreshed = original.refresh_scores(rng, drift=0.01)
        deltas = [
            abs(a.score - b.score) for a, b in zip(original, refreshed)
        ]
        assert max(deltas) < 0.1

    def test_playbook_entry_vector_roundtrip(self, small_topology, t0):
        from repro.anycast import AnycastService, AnycastSite, build_playbook
        from repro.net.geo import city

        service = AnycastService(
            small_topology,
            [AnycastSite("A", 21, city("ORD")), AnycastSite("B", 23, city("FRA"))],
        )
        playbook = build_playbook(service, t0)
        entry = playbook[0]
        catalog = StateCatalog()
        networks = sorted(f"as{asn}" for asn in entry.assignment)
        vector = entry.vector(catalog, networks)
        assert len(vector) == len(entry.assignment)
        assert sum(entry.aggregates.values()) == len(entry.assignment)


class TestModeExemplarAndMatching:
    def make_modes(self, pattern):
        from repro.core.modes import find_modes

        series = VectorSeries(["x", "y", "z"], StateCatalog())
        for day, site in enumerate(pattern):
            series.append_mapping(
                {"x": site, "y": site, "z": "C"}, T0 + timedelta(days=day)
            )
        return find_modes(series)

    def test_exemplar_is_a_member(self):
        from repro.core.modes import mode_exemplar

        modes = self.make_modes(["A", "A", "A", "B", "B", "B"])
        exemplar = mode_exemplar(modes, 0)
        assert exemplar.time in modes[0].times
        assert exemplar.state_of("x") == "A"

    def test_exemplar_singleton_mode(self):
        from repro.core.modes import ModeSet, mode_exemplar

        series = VectorSeries(["x"], StateCatalog())
        series.append_mapping({"x": "A"}, T0)
        series.append_mapping({"x": "B"}, T0 + timedelta(days=1))
        modeset = ModeSet(series, np.array([0, 1]), np.eye(2), 0.0)
        assert mode_exemplar(modeset, 1).state_of("x") == "B"

    def test_match_across_studies(self):
        from repro.core.modes import match_across

        this_year = self.make_modes(["A", "A", "B", "B"])
        last_year = self.make_modes(["B", "B", "A", "A"])
        matches = match_across(this_year, last_year)
        as_dict = {ours: (theirs, value) for ours, theirs, value in matches}
        # Our A-mode (0) matches their A-mode (1), and vice versa.
        assert as_dict[0][0] == 1 and as_dict[0][1] == pytest.approx(1.0)
        assert as_dict[1][0] == 0 and as_dict[1][1] == pytest.approx(1.0)

    def test_match_across_network_mismatch(self):
        from repro.core.modes import find_modes, match_across

        a = self.make_modes(["A", "A", "B", "B"])
        other_series = VectorSeries(["p", "q"], StateCatalog())
        other_series.append_mapping({"p": "A", "q": "A"}, T0)
        other_series.append_mapping({"p": "A", "q": "A"}, T0 + timedelta(days=1))
        b = find_modes(other_series)
        with pytest.raises(ValueError):
            match_across(a, b)


class TestSimilarityToReference:
    def test_profile_against_mode_exemplar(self):
        from repro.core.compare import similarity_to_reference
        from repro.core.modes import find_modes, mode_exemplar

        series = VectorSeries(["x", "y"], StateCatalog())
        pattern = ["A"] * 3 + ["B"] * 3 + ["A"] * 2
        for day, site in enumerate(pattern):
            series.append_mapping({"x": site, "y": site}, T0 + timedelta(days=day))
        modes = find_modes(series)
        reference = mode_exemplar(modes, 0)
        profile = similarity_to_reference(series, reference)
        assert profile.shape == (8,)
        assert profile[:3].tolist() == [1.0, 1.0, 1.0]
        assert profile[3:6].tolist() == [0.0, 0.0, 0.0]
        assert profile[6:].tolist() == [1.0, 1.0]

    def test_weights_respected(self):
        from repro.core.compare import similarity_to_reference
        from repro.core.vector import RoutingVector

        series = VectorSeries(["big", "small"], StateCatalog())
        series.append_mapping({"big": "A", "small": "B"}, T0)
        reference = RoutingVector.from_mapping(
            {"big": "A", "small": "C"},
            catalog=series.catalog,
            networks=series.networks,
        )
        profile = similarity_to_reference(
            series, reference, weights=np.array([9.0, 1.0])
        )
        assert profile[0] == pytest.approx(0.9)
