"""Shared fixtures for the Fenrir reproduction test suite."""

from __future__ import annotations

import random
from datetime import datetime, timedelta

import pytest

from repro.bgp.topology import ASTopology
from repro.core.series import VectorSeries
from repro.core.vector import StateCatalog
from repro.net.geo import city


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def t0() -> datetime:
    return datetime(2024, 1, 1)


@pytest.fixture
def small_topology() -> ASTopology:
    """A hand-built topology with known structure::

          T1 --- T2        (tier-1 peers)
         /  \\   /  \\
        R1   R2    R3      (regional providers, customers of tier-1s)
        |    |     |
        S1   S2    S3      (stubs; S2 also buys from R1)
    """
    topo = ASTopology()
    topo.add_as(1, "T1", tier=1, location=city("NYC"))
    topo.add_as(2, "T2", tier=1, location=city("LHR"))
    topo.add_as(11, "R1", tier=2, location=city("ORD"))
    topo.add_as(12, "R2", tier=2, location=city("LAX"))
    topo.add_as(13, "R3", tier=2, location=city("FRA"))
    topo.add_as(21, "S1", tier=3, location=city("ORD"))
    topo.add_as(22, "S2", tier=3, location=city("LAX"))
    topo.add_as(23, "S3", tier=3, location=city("FRA"))
    topo.add_peer_link(1, 2)
    topo.add_customer_link(1, 11)
    topo.add_customer_link(1, 12)
    topo.add_customer_link(2, 12)
    topo.add_customer_link(2, 13)
    topo.add_customer_link(11, 21)
    topo.add_customer_link(12, 22)
    topo.add_customer_link(13, 23)
    topo.add_customer_link(11, 22)
    return topo


@pytest.fixture
def simple_series(t0: datetime) -> VectorSeries:
    """Four networks, five observations, one clear change after index 2."""
    series = VectorSeries(["n1", "n2", "n3", "n4"], StateCatalog())
    states = [
        {"n1": "A", "n2": "A", "n3": "B", "n4": "B"},
        {"n1": "A", "n2": "A", "n3": "B", "n4": "B"},
        {"n1": "A", "n2": "A", "n3": "B", "n4": "B"},
        {"n1": "B", "n2": "B", "n3": "A", "n4": "B"},
        {"n1": "B", "n2": "B", "n3": "A", "n4": "B"},
    ]
    for index, assignment in enumerate(states):
        series.append_mapping(assignment, t0 + timedelta(days=index))
    return series
