"""Shared fixtures for the Fenrir reproduction test suite."""

from __future__ import annotations

import os
import random
from datetime import datetime, timedelta
from typing import Callable

import pytest

from repro.bgp.topology import ASTopology
from repro.core.series import VectorSeries
from repro.core.vector import RoutingVector, StateCatalog, UNKNOWN
from repro.net.geo import city


def pytest_collection_modifyitems(config, items) -> None:
    """Skip ``slow``-marked tests unless RUN_SLOW=1 is exported.

    Tier-1 runs stay fast and deterministic; the multi-process stress
    tests opt in via the environment (see docs/performance.md).
    """
    if os.environ.get("RUN_SLOW"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: set RUN_SLOW=1 to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


def random_routing_series(
    num_networks: int = 40,
    num_rounds: int = 12,
    num_states: int = 5,
    unknown_fraction: float = 0.1,
    churn: float = 0.05,
    seed: int = 0,
) -> VectorSeries:
    """A seeded random series: persistent assignments with churn.

    Shared by the phi property tests, the parallel-engine equivalence
    grid, and the cache tests so every randomized input is reproducible
    from its seed alone.
    """
    rng = random.Random(seed)
    networks = [f"n{i}" for i in range(num_networks)]
    series = VectorSeries(networks, StateCatalog())
    t0 = datetime(2024, 1, 1)

    def draw_state() -> str:
        if rng.random() < unknown_fraction:
            return UNKNOWN
        return f"s{rng.randrange(num_states)}"

    assignment = {network: draw_state() for network in networks}
    for round_index in range(num_rounds):
        if round_index:
            for network in networks:
                if rng.random() < churn:
                    assignment[network] = draw_state()
        series.append_mapping(dict(assignment), t0 + timedelta(hours=round_index))
    return series


def random_vector_pair(
    num_networks: int = 30,
    num_states: int = 4,
    unknown_fraction: float = 0.15,
    seed: int = 0,
) -> tuple[RoutingVector, RoutingVector]:
    """Two seeded random vectors over the same networks and catalog."""
    series = random_routing_series(
        num_networks=num_networks,
        num_rounds=2,
        num_states=num_states,
        unknown_fraction=unknown_fraction,
        churn=0.5,
        seed=seed,
    )
    return series[0], series[1]


@pytest.fixture
def make_series() -> Callable[..., VectorSeries]:
    return random_routing_series


@pytest.fixture
def make_vector_pair() -> Callable[..., tuple[RoutingVector, RoutingVector]]:
    return random_vector_pair


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def t0() -> datetime:
    return datetime(2024, 1, 1)


@pytest.fixture
def small_topology() -> ASTopology:
    """A hand-built topology with known structure::

          T1 --- T2        (tier-1 peers)
         /  \\   /  \\
        R1   R2    R3      (regional providers, customers of tier-1s)
        |    |     |
        S1   S2    S3      (stubs; S2 also buys from R1)
    """
    topo = ASTopology()
    topo.add_as(1, "T1", tier=1, location=city("NYC"))
    topo.add_as(2, "T2", tier=1, location=city("LHR"))
    topo.add_as(11, "R1", tier=2, location=city("ORD"))
    topo.add_as(12, "R2", tier=2, location=city("LAX"))
    topo.add_as(13, "R3", tier=2, location=city("FRA"))
    topo.add_as(21, "S1", tier=3, location=city("ORD"))
    topo.add_as(22, "S2", tier=3, location=city("LAX"))
    topo.add_as(23, "S3", tier=3, location=city("FRA"))
    topo.add_peer_link(1, 2)
    topo.add_customer_link(1, 11)
    topo.add_customer_link(1, 12)
    topo.add_customer_link(2, 12)
    topo.add_customer_link(2, 13)
    topo.add_customer_link(11, 21)
    topo.add_customer_link(12, 22)
    topo.add_customer_link(13, 23)
    topo.add_customer_link(11, 22)
    return topo


@pytest.fixture
def simple_series(t0: datetime) -> VectorSeries:
    """Four networks, five observations, one clear change after index 2."""
    series = VectorSeries(["n1", "n2", "n3", "n4"], StateCatalog())
    states = [
        {"n1": "A", "n2": "A", "n3": "B", "n4": "B"},
        {"n1": "A", "n2": "A", "n3": "B", "n4": "B"},
        {"n1": "A", "n2": "A", "n3": "B", "n4": "B"},
        {"n1": "B", "n2": "B", "n3": "A", "n4": "B"},
        {"n1": "B", "n2": "B", "n3": "A", "n4": "B"},
    ]
    for index, assignment in enumerate(states):
        series.append_mapping(assignment, t0 + timedelta(days=index))
    return series
