"""Tests for the control-plane substrate: collectors, catchments, hegemony."""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.bgp.events import RoutingScenario, SiteDrain
from repro.bgp.policy import Announcement
from repro.controlplane.catchments import origin_series, transit_series
from repro.controlplane.collector import RouteCollector
from repro.controlplane.hegemony import hegemony_scores, hegemony_series


@pytest.fixture
def scenario(small_topology):
    return RoutingScenario(
        small_topology,
        [Announcement(origin=21, label="A"), Announcement(origin=23, label="B")],
    )


@pytest.fixture
def collector(scenario):
    return RouteCollector(scenario, vantages=[22, 23, 1, 2, 13])


class TestCollector:
    def test_unknown_vantage_rejected(self, scenario):
        with pytest.raises(KeyError):
            RouteCollector(scenario, vantages=[999])

    def test_views_have_paths_to_origins(self, collector, t0):
        views = collector.views_at(t0)
        assert len(views) == 5
        for view in views:
            assert view.as_path[0] == view.vantage_asn
            assert view.as_path[-1] in (21, 23)
            assert view.origin_label in ("A", "B")

    def test_views_follow_events(self, collector, scenario, t0):
        scenario.add_event(SiteDrain("A", t0 + timedelta(days=1), t0 + timedelta(days=2)))
        during = {v.vantage_asn: v.origin_label for v in collector.views_at(t0 + timedelta(days=1))}
        assert set(during.values()) == {"B"}

    def test_missing_routes_omitted(self, small_topology, t0):
        small_topology.remove_link(13, 23)
        small_topology.remove_link(2, 13)
        scenario = RoutingScenario(
            small_topology, [Announcement(origin=21, label="A")]
        )
        collector = RouteCollector(scenario, vantages=[13, 22])
        views = collector.views_at(t0)
        assert [v.vantage_asn for v in views] == [22]

    def test_rib_export(self, collector, t0):
        rib = collector.rib_at(t0)
        assert len(rib) == 5
        entry = next(iter(rib))
        assert entry.prefix == collector.prefix

    def test_paths_at(self, collector, t0):
        paths = collector.paths_at(t0)
        assert set(paths) == {22, 23, 1, 2, 13}


class TestControlPlaneSeries:
    def test_origin_series_matches_data_plane(self, collector, scenario, t0):
        times = [t0 + timedelta(days=i) for i in range(3)]
        series = origin_series(collector, times)
        assert len(series) == 3
        outcome = scenario.outcome_at(t0)
        for vantage in collector.vantages:
            assert series[0].state_of(f"as{vantage}") == outcome.label_of(vantage)

    def test_origin_series_detects_drain(self, collector, scenario, t0):
        scenario.add_event(SiteDrain("A", t0 + timedelta(days=1), t0 + timedelta(days=2)))
        times = [t0 + timedelta(days=i) for i in range(3)]
        series = origin_series(collector, times)
        from repro.core import phi

        assert phi(series[0], series[1]) < 1.0
        assert phi(series[0], series[2]) == 1.0

    def test_transit_series_focus_hop(self, collector, t0):
        series = transit_series(collector, [t0], focus_hop=1)
        # Vantage 13 (R3) reaches B via its customer 23 directly.
        assert series[0].state_of("as13") == "AS23"

    def test_transit_series_names(self, collector, t0):
        series = transit_series(collector, [t0], focus_hop=1, as_names={23: "SITE-B"})
        assert series[0].state_of("as13") == "SITE-B"

    def test_transit_series_origin_vantage_unknown(self, scenario, t0):
        collector = RouteCollector(scenario, vantages=[21])
        series = transit_series(collector, [t0])
        assert series[0].state_of("as21") == "unknown"

    def test_transit_series_focus_validation(self, collector, t0):
        with pytest.raises(ValueError):
            transit_series(collector, [t0], focus_hop=0)


class TestHegemony:
    def test_single_transit_dominates(self):
        paths = {v: (v, 100, 9) for v in (1, 2, 3, 4)}
        scores = hegemony_scores(paths, trim=0.0)
        assert scores == {100: 1.0}

    def test_split_transit(self):
        paths = {
            1: (1, 100, 9),
            2: (2, 100, 9),
            3: (3, 200, 9),
            4: (4, 200, 9),
        }
        scores = hegemony_scores(paths, trim=0.0)
        assert scores == {100: 0.5, 200: 0.5}

    def test_origin_excluded_by_default(self):
        paths = {1: (1, 100, 9)}
        assert 9 not in hegemony_scores(paths, trim=0.0)
        assert 9 in hegemony_scores(paths, trim=0.0, include_origin=True)

    def test_vantage_never_counts_itself(self):
        paths = {1: (1, 9), 2: (2, 1, 9)}
        scores = hegemony_scores(paths, trim=0.0)
        # AS1 appears as transit only on vantage 2's path.
        assert scores[1] == 0.5

    def test_trimming_removes_extreme_vantages(self):
        # 10 vantages, one of which uniquely uses AS 777.
        paths = {v: (v, 100, 9) for v in range(1, 10)}
        paths[10] = (10, 777, 9)
        trimmed = hegemony_scores(paths, trim=0.1)
        untrimmed = hegemony_scores(paths, trim=0.0)
        assert 777 in untrimmed
        assert 777 not in trimmed  # its single supporter was trimmed away
        assert trimmed[100] == 1.0  # and 100's single dissenter too

    def test_trim_validation(self):
        with pytest.raises(ValueError):
            hegemony_scores({1: (1, 2, 3)}, trim=0.5)

    def test_empty_paths(self):
        assert hegemony_scores({}) == {}

    def test_hegemony_series(self):
        snapshots = [
            {1: (1, 100, 9), 2: (2, 100, 9)},
            {1: (1, 200, 9), 2: (2, 200, 9)},
        ]
        series = hegemony_series(snapshots, trim=0.0)
        assert series[0] == {100: 1.0}
        assert series[1] == {200: 1.0}

    def test_hegemony_on_simulated_scenario(self, collector, scenario, t0):
        paths = collector.paths_at(t0)
        scores = hegemony_scores(paths, trim=0.0)
        assert scores
        assert all(0.0 < value <= 1.0 for value in scores.values())
