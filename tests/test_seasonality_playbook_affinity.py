"""Tests for seasonality estimation, TE playbooks, and affinity analysis."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.anycast.playbook import build_playbook, candidate_actions, recommend
from repro.anycast.service import AnycastService, AnycastSite
from repro.core.seasonality import analyze_seasonality, estimate_period, lag_profile
from repro.core.series import VectorSeries
from repro.core.vector import StateCatalog
from repro.net.geo import city
from repro.webmap.affinity import analyze_affinity

T0 = datetime(2025, 1, 1)


def block_similarity(num_blocks: int, period: int, high=0.8, low=0.2) -> np.ndarray:
    """A synthetic heatmap: high within period-blocks, low across."""
    size = num_blocks * period
    matrix = np.full((size, size), low)
    for block in range(num_blocks):
        start = block * period
        matrix[start : start + period, start : start + period] = high
    np.fill_diagonal(matrix, 1.0)
    return matrix


class TestSeasonality:
    def test_lag_profile_shape(self):
        matrix = block_similarity(4, 5)
        profile = lag_profile(matrix, max_lag=10)
        assert len(profile) == 11
        assert profile[0] == 1.0
        assert profile[1] > profile[8]

    def test_lag_profile_validation(self):
        with pytest.raises(ValueError):
            lag_profile(np.ones((2, 3)))

    def test_period_detected_on_block_structure(self):
        matrix = block_similarity(8, 7)
        assert estimate_period(matrix) == 7

    def test_period_none_on_stable_routing(self):
        matrix = np.full((40, 40), 0.9)
        np.fill_diagonal(matrix, 1.0)
        assert estimate_period(matrix) is None

    def test_period_none_on_recurring_modes(self):
        # Two long modes that recur: similarity climbs back up at long
        # lags, which a schedule never does.
        labels = np.array([0] * 10 + [1] * 10 + [0] * 10)
        matrix = np.where(labels[:, None] == labels[None, :], 0.9, 0.2)
        np.fill_diagonal(matrix, 1.0)
        assert estimate_period(matrix) is None

    def test_analyze_report(self):
        matrix = block_similarity(8, 7)
        report = analyze_seasonality(matrix)
        assert report.scheduled
        assert report.period == 7
        assert report.phi_within_period > report.phi_across_period

    def test_google_weekly_schedule(self):
        from repro.core.compare import similarity_matrix
        from repro.datasets import google

        study = google.generate(num_prefixes=400)
        era = similarity_matrix(study.series)[3:, 3:]
        report = analyze_seasonality(era)
        assert report.period == 7  # the paper's work-week cadence


@pytest.fixture
def service(small_topology):
    sites = [
        AnycastSite("A", 21, city("ORD")),
        AnycastSite("B", 23, city("FRA")),
    ]
    return AnycastService(small_topology, sites)


class TestPlaybook:
    def test_candidate_menu(self, service, t0):
        actions = candidate_actions(service, t0)
        names = [name for name, _action in actions]
        assert any(name.startswith("drain A") for name in names)
        assert any("scope B" in name for name in names)
        assert any("prepend" in name for name in names)

    def test_build_playbook_restores_scenario(self, service, t0):
        before_events = list(service.scenario.events)
        before_map = service.catchment_map(t0)
        playbook = build_playbook(service, t0)
        assert service.scenario.events == before_events
        assert service.catchment_map(t0) == before_map
        assert playbook[0].action is None  # baseline first
        assert len(playbook) >= 4

    def test_entries_differ_from_baseline(self, service, t0):
        playbook = build_playbook(service, t0)
        baseline = playbook[0].assignment
        drained = next(e for e in playbook if e.name == "drain A")
        assert drained.assignment != baseline
        assert "A" not in drained.aggregates

    def test_recommend_matches_target(self, service, t0):
        playbook = build_playbook(service, t0)
        drained = next(e for e in playbook if e.name == "drain A")
        entry, similarity = recommend(playbook, drained.assignment)
        assert entry.name == "drain A"
        assert similarity == 1.0

    def test_recommend_baseline_for_current_state(self, service, t0):
        playbook = build_playbook(service, t0)
        entry, similarity = recommend(playbook, playbook[0].assignment)
        assert entry.action is None
        assert similarity == 1.0

    def test_recommend_empty_rejected(self):
        with pytest.raises(ValueError):
            recommend([], {})


class TestAffinity:
    def make_series(self, columns):
        networks = sorted(columns)
        length = len(next(iter(columns.values())))
        series = VectorSeries(networks, StateCatalog())
        for index in range(length):
            assignment = {
                n: columns[n][index] for n in networks if columns[n][index] is not None
            }
            series.append_mapping(assignment, T0 + timedelta(days=index))
        return series

    def test_perfectly_sticky_network(self):
        series = self.make_series({"a": ["X"] * 5})
        report = analyze_affinity(series)
        assert report.affinity["a"] == 1.0
        assert report.modal_state["a"] == "X"

    def test_bouncing_network(self):
        series = self.make_series({"a": ["X", "Y", "X", "Y"]})
        report = analyze_affinity(series)
        assert report.affinity["a"] == 0.5
        assert report.low_affinity_networks(threshold=0.6) == ["a"]

    def test_unknown_rounds_excluded(self):
        series = self.make_series({"a": ["X", None, None, "X"]})
        report = analyze_affinity(series)
        assert report.affinity["a"] == 1.0

    def test_min_observations(self):
        series = self.make_series({"a": ["X", None, None, None]})
        report = analyze_affinity(series, min_observations=2)
        assert "a" not in report.affinity

    def test_summary_statistics(self):
        series = self.make_series(
            {"a": ["X"] * 4, "b": ["X", "Y", "Z", "W"]}
        )
        report = analyze_affinity(series)
        assert report.mean == pytest.approx((1.0 + 0.25) / 2)
        assert report.quantile(0.0) == 0.25

    def test_google_vs_wikipedia_affinity_contrast(self):
        from repro.datasets import google, wikipedia

        google_study = google.generate(num_prefixes=250)
        wiki_study = wikipedia.generate(num_prefixes=250)
        google_affinity = analyze_affinity(google_study.series).mean
        wiki_affinity = analyze_affinity(wiki_study.series).mean
        assert wiki_affinity > 0.9
        assert google_affinity < wiki_affinity - 0.2
