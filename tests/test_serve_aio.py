"""Tests for ``repro.serve.aio`` and the pipelined wire protocol.

Three layers, matching the tentpole's risk surface:

* **correlation** — a Hypothesis property that *any* completion order
  of pipelined responses (a fake server answering in a shuffled
  permutation of arrival order) resolves every ``AsyncServeClient``
  future exactly once with the matching ``id``;
* **server pipelining** — deterministic out-of-order completion and
  the per-connection in-flight cap's explicit ``overloaded`` answer,
  driven through a gated ``_dispatch`` so nothing depends on timing;
* **pool & retry** — bounded concurrency, FIFO admission, reconnect
  after a server restart, and the blocking client's one safe resend
  on a stale socket; plus the slow-marked SIGKILL-under-concurrent-
  load chaos test asserting byte-equality with the oracle.
"""

from __future__ import annotations

import asyncio
import threading
import time
from datetime import datetime, timedelta
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    AsyncServeClient,
    FenrirServer,
    OverloadedError,
    ServeClient,
    ServeConfig,
)
from repro.serve.aio import AsyncConnection, ConnectionPool, RequestNotSent
from repro.serve.protocol import ServeTimeout, check_response
from cluster_chaos import (
    ClusterHarness,
    canonical,
    generate_rounds,
    oracle_state,
)
from test_serve_server import ServerThread

T0 = datetime(2025, 1, 1)
NETWORKS = [f"10.0.{i}.0/24" for i in range(6)]


def run(coroutine):
    return asyncio.run(coroutine)


async def start_server(tmp_path: Path, **overrides) -> FenrirServer:
    config = ServeConfig(data_dir=tmp_path / "data", port=0, **overrides)
    server = FenrirServer(config)
    await server.start()
    return server


# -- correlation under arbitrary completion order ----------------------------


class ShuffledResponder:
    """A wire-protocol server answering in a chosen permutation.

    Collects ``expect`` requests, then writes their responses in
    ``order`` (indices into arrival order), echoing each request's
    ``id`` and ``marker``. ``topology`` frames (the pool's health
    check) are answered immediately and don't count toward ``expect``.
    """

    def __init__(self, expect: int, order: list[int]) -> None:
        self.expect = expect
        self.order = order
        self._server: asyncio.AbstractServer | None = None

    async def __aenter__(self) -> "ShuffledResponder":
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        from repro.serve import protocol

        held: list[dict] = []
        try:
            while len(held) < self.expect:
                request = await protocol.read_frame(reader)
                if request is None:
                    return
                if request.get("cmd") == "topology":
                    await protocol.write_frame(
                        writer, {"id": request.get("id"), "ok": True}
                    )
                    continue
                held.append(request)
            for index in self.order:
                request = held[index]
                await protocol.write_frame(
                    writer,
                    {
                        "id": request.get("id"),
                        "ok": True,
                        "marker": request.get("marker"),
                    },
                )
            while True:  # keep the connection open until the client leaves
                if await protocol.read_frame(reader) is None:
                    return
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()


class TestCorrelationProperty:
    @given(order=st.permutations(tuple(range(12))))
    @settings(max_examples=25, deadline=None)
    def test_any_completion_order_resolves_every_future_once(self, order):
        async def main() -> None:
            async with ShuffledResponder(expect=12, order=list(order)) as fake:
                host, port = fake.address
                async with AsyncServeClient(
                    host, port, timeout=10.0, max_connections=1, max_inflight=16
                ) as client:
                    responses = await asyncio.gather(
                        *(
                            client.request("query", monitor="m", marker=i)
                            for i in range(12)
                        )
                    )
            # Exactly once, each with its own answer: marker i came back
            # to the caller that sent marker i, whatever the order.
            assert [r["marker"] for r in responses] == list(range(12))
            assert len({r["id"] for r in responses}) == 12

        run(main())


# -- server pipelining -------------------------------------------------------


def gate_dispatch(server: FenrirServer) -> asyncio.Event:
    """Replace ``_dispatch`` so ``cmd=wait`` blocks on the returned event.

    Everything else passes through, which lets a test hold one request
    in flight for as long as it needs — deterministically — while
    later frames on the same connection are read and answered.
    """
    release = asyncio.Event()
    original = server._dispatch

    async def gated(request: dict) -> dict:
        if request.get("cmd") == "wait":
            await release.wait()
            return {"id": request.get("id"), "ok": True, "waited": True}
        return await original(request)

    server._dispatch = gated  # type: ignore[method-assign]
    return release


class TestServerPipelining:
    def test_out_of_order_completion_and_inflight_cap(self, tmp_path):
        async def main() -> None:
            server = await start_server(tmp_path, max_inflight=1)
            release = gate_dispatch(server)
            try:
                host, port = server.address
                connection = await AsyncConnection.open(host, port, max_inflight=8)
                try:
                    blocked = connection.submit("wait")
                    await connection.drain()
                    # Give the reader loop one turn to create the task;
                    # frames after this point exceed the cap of 1.
                    rejected = connection.submit("stats")
                    await connection.drain()
                    overloaded = await asyncio.wait_for(rejected, 5.0)
                    # The capped frame is answered immediately — out of
                    # order, before the first request has completed —
                    # with the explicit backpressure error and depth.
                    assert not blocked.done()
                    assert overloaded["ok"] is False
                    assert overloaded["error"] == "overloaded"
                    assert overloaded["in_flight"] == 1
                    with pytest.raises(OverloadedError):
                        check_response(overloaded)
                    release.set()
                    first = await asyncio.wait_for(blocked, 5.0)
                    assert first["waited"] is True
                finally:
                    await connection.close()
            finally:
                await server.stop()

        run(main())

    def test_timeout_does_not_poison_the_connection(self, tmp_path):
        async def main() -> None:
            server = await start_server(tmp_path)
            release = gate_dispatch(server)
            try:
                host, port = server.address
                connection = await AsyncConnection.open(host, port)
                try:
                    with pytest.raises(ServeTimeout):
                        await connection.request("wait", timeout=0.05)
                    # Unlike the blocking client, the connection stays
                    # usable: correlation ids keep later pairings intact
                    # and the late response is dropped by id.
                    response = await connection.request("stats", timeout=5.0)
                    assert response["ok"] is True
                    assert connection.healthy
                    release.set()
                finally:
                    await connection.close()
            finally:
                await server.stop()

        run(main())

    def test_pipelined_same_monitor_ingest_applies_in_send_order(self, tmp_path):
        async def main() -> None:
            server = await start_server(tmp_path)
            try:
                host, port = server.address
                connection = await AsyncConnection.open(host, port, max_inflight=64)
                try:
                    await connection.request(
                        "create", monitor="mon", networks=NETWORKS
                    )
                    futures = []
                    for index in range(40):
                        states = {
                            name: ("up" if (index + i) % 3 else "down")
                            for i, name in enumerate(NETWORKS)
                        }
                        futures.append(
                            connection.submit(
                                "ingest",
                                monitor="mon",
                                states=states,
                                time=(T0 + timedelta(minutes=index)).isoformat(),
                            )
                        )
                    await connection.drain()
                    responses = [
                        check_response(await future) for future in futures
                    ]
                    # Strictly-increasing timestamps survived 40 rounds
                    # in flight at once: frame order == apply order.
                    assert len(responses) == 40
                    query = await connection.request("query", monitor="mon")
                    assert query["rounds"] == 40
                finally:
                    await connection.close()
            finally:
                await server.stop()

        run(main())


# -- pool behaviour ----------------------------------------------------------


class TestConnectionPool:
    def test_bounded_inflight_and_fifo_completion(self, tmp_path):
        async def main() -> None:
            server = await start_server(tmp_path)
            release = gate_dispatch(server)
            try:
                host, port = server.address
                pool = ConnectionPool(
                    host, port, max_connections=1, max_inflight=2,
                    health_check=False,
                )
                try:
                    tasks = [
                        asyncio.ensure_future(pool.request("wait", 10.0))
                        for _ in range(4)
                    ]
                    await asyncio.sleep(0.1)
                    # Two hold slots; two wait FIFO on the semaphore.
                    assert pool.in_flight == 2
                    assert not any(task.done() for task in tasks)
                    release.set()
                    responses = await asyncio.gather(*tasks)
                    assert all(r["waited"] for r in responses)
                    assert pool.in_flight == 0
                finally:
                    await pool.close()
            finally:
                await server.stop()

        run(main())

    def test_reconnects_after_server_restart(self, tmp_path):
        async def main() -> None:
            server = await start_server(tmp_path)
            host, port = server.address
            pool = ConnectionPool(host, port, max_connections=1)
            try:
                first = await pool.request("stats", 5.0)
                assert first["ok"] is True
                await server.stop()
                server = FenrirServer(
                    ServeConfig(data_dir=tmp_path / "data", host=host, port=port)
                )
                await server.start()
                # The pooled connection died with the old server; the
                # next request health-checks and re-dials transparently.
                second = await pool.request("stats", 5.0)
                assert second["ok"] is True
            finally:
                await pool.close()
                await server.stop()

        run(main())

    def test_request_not_sent_when_connection_already_dead(self, tmp_path):
        async def main() -> None:
            server = await start_server(tmp_path)
            try:
                host, port = server.address
                connection = await AsyncConnection.open(host, port)
                await connection.close()
                with pytest.raises(RequestNotSent):
                    connection.submit("stats")
            finally:
                await server.stop()

        run(main())


# -- ring-aware client -------------------------------------------------------


class TestRingAware:
    def test_single_server_topology_falls_back_to_routed(self, tmp_path):
        async def main() -> None:
            server = await start_server(tmp_path)
            try:
                host, port = server.address
                async with AsyncServeClient(
                    host, port, timeout=5.0, ring_aware=True
                ) as client:
                    topology = await client.topology()
                    assert topology["router"] is False
                    assert list(topology["shards"]) == ["0"]
                    await client.create("mon", NETWORKS)
                    await client.ingest(
                        "mon",
                        {name: "up" for name in NETWORKS},
                        T0,
                    )
                    assert (await client.query("mon"))["rounds"] == 1
                    # No shard pools were dialed: a non-router topology
                    # means the main pool *is* the direct path.
                    assert client._shard_pools == {}
            finally:
                await server.stop()

        run(main())


# -- blocking client stale-socket retry --------------------------------------


class _DeadSocket:
    """A socket whose peer reset while it sat in a pool, distilled."""

    def __init__(self, fail_on: str) -> None:
        self.fail_on = fail_on

    def sendall(self, data: bytes) -> None:
        if self.fail_on == "send":
            raise ConnectionResetError("peer reset while idle")

    def recv(self, count: int) -> bytes:
        raise ConnectionResetError("peer reset after send")

    def close(self) -> None:
        pass


class TestBlockingClientRetry:
    def test_send_phase_reset_reconnects_and_resends(self, tmp_path):
        # Server on a thread loop so the blocking client can talk to it.
        with ServerThread(
            ServeConfig(data_dir=tmp_path / "data", port=0)
        ) as running:
            host, port = running.address
            with ServeClient(host, port, timeout=5.0) as client:
                assert client.stats()["ok"] is True
                # Swap in a socket that dies on the *send* — the frame
                # provably never left, so the client must reconnect and
                # resend rather than surface the reset.
                client._sock = _DeadSocket(fail_on="send")
                assert client.stats()["ok"] is True

    def test_recv_phase_reset_is_not_retried(self, tmp_path):
        with ServerThread(
            ServeConfig(data_dir=tmp_path / "data", port=0)
        ) as running:
            host, port = running.address
            with ServeClient(host, port, timeout=5.0) as client:
                client._sock = _DeadSocket(fail_on="recv")
                # After a successful send the request's fate is unknown:
                # a transparent retry could double-apply, so the error
                # surfaces.
                with pytest.raises(ConnectionResetError):
                    client.stats()


# -- chaos: SIGKILL a shard under concurrent async load ----------------------


@pytest.mark.slow
class TestKillAShardUnderAsyncLoad:
    def test_pool_fallback_matches_oracle(self, tmp_path):
        """SIGKILL the victim's owning shard while four monitor streams
        are being fed concurrently through one async client; the pool's
        reconnect plus resume-from-applied-count must land every
        monitor byte-equal to its uninterrupted oracle.
        """
        monitors = [f"victim-{i}" for i in range(4)]
        per_monitor = {
            name: generate_rounds(NETWORKS, 100, seed=11 + i)
            for i, name in enumerate(monitors)
        }
        chunk = 10
        kill_at = 40
        with ClusterHarness(tmp_path / "cluster", shards=2) as harness:
            owner = harness.owner_of(monitors[0])
            host, port = harness.address
            killed: list[int] = []

            async def applied_rounds(
                client: AsyncServeClient, name: str
            ) -> int:
                from repro.serve import ServeClientError

                deadline = time.monotonic() + 60.0
                while True:
                    try:
                        return int((await client.query(name))["rounds"])
                    except ServeClientError as exc:
                        if exc.code == "no_such_monitor":
                            return 0
                        if time.monotonic() > deadline:
                            raise
                    except Exception:
                        if time.monotonic() > deadline:
                            raise
                    await asyncio.sleep(0.2)

            async def feed_stream(client: AsyncServeClient, name: str) -> int:
                rounds = per_monitor[name]
                applied = 0
                created = False
                deadline = time.monotonic() + 180.0
                while applied < len(rounds):
                    if time.monotonic() > deadline:
                        raise TimeoutError(f"{name}: fed {applied} rounds")
                    if (
                        name == monitors[0]
                        and not killed
                        and applied >= kill_at
                    ):
                        killed.append(applied)
                        threading.Timer(
                            0.005, harness.kill_child, args=(owner, "primary")
                        ).start()
                    try:
                        if not created:
                            if name not in await client.list_monitors():
                                await client.create(name, NETWORKS)
                            created = True
                        await client.ingest_many(
                            name,
                            rounds[applied : applied + chunk],
                            batch_size=chunk,
                        )
                        applied += len(rounds[applied : applied + chunk])
                    except Exception:
                        await asyncio.sleep(0.2)
                        applied = await applied_rounds(client, name)
                        created = applied > 0 or created
                return applied

            async def feed_all() -> list[int]:
                async with AsyncServeClient(
                    host, port, timeout=10.0, max_connections=2, max_inflight=32
                ) as client:
                    return await asyncio.gather(
                        *(feed_stream(client, name) for name in monitors)
                    )

            fed = asyncio.run(feed_all())
            assert fed == [100, 100, 100, 100]
            assert killed, "chaos hook never fired"
            harness.wait_shard_up(owner)
            finals = {name: harness.monitor_state(name) for name in monitors}
        for name in monitors:
            assert canonical(finals[name]) == canonical(
                oracle_state(NETWORKS, per_monitor[name])
            ), f"{name} diverged from its oracle"
