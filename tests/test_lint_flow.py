"""The flow layer: CFG construction properties plus dataflow/summary
unit tests.

The Hypothesis half generates random-but-live function bodies (abrupt
exits only in positions that leave a fall-through path, opaque
conditions everywhere) and checks structural invariants the rules rely
on: every statement owns exactly one node, nothing the generator wrote
is unreachable, try/finally statements funnel every continuation
through the finally block, and the graph is a pure function of the
source text. The deterministic half pins down the individual analyses
on hand-written functions.
"""

from __future__ import annotations

import ast
from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.flow import (
    DYNAMIC,
    STMT,
    WITH_EXIT,
    ModuleGraph,
    build_cfg,
    guarantees_effect,
    locks_held,
    reaching_definitions,
    yield_on_some_path,
)
from repro.lint.rules._util import lock_key

# -- random program generator -------------------------------------------------

_SIMPLE = st.sampled_from(
    [("assign", "x"), ("assign", "y"), ("call",), ("awaitstmt",)]
)


def _extend(stmt: st.SearchStrategy) -> st.SearchStrategy:
    block = st.lists(stmt, min_size=1, max_size=3)
    body_tail = st.sampled_from([None, ("return",), ("raise",)])
    loop_tail = st.sampled_from(
        [None, ("break",), ("continue",), ("return",)]
    )
    return st.one_of(
        st.tuples(
            st.just("if"),
            st.tuples(block, body_tail),
            st.one_of(st.none(), block),
        ),
        st.tuples(st.just("while"), st.tuples(block, loop_tail)),
        st.tuples(st.just("for"), st.tuples(block, loop_tail)),
        st.tuples(st.just("with"), block),
        st.tuples(st.just("awith"), block),
        st.tuples(st.just("tryfin"), block, block),
        st.tuples(st.just("tryexc"), st.tuples(block, body_tail), block),
    )


_STMT_TREES = st.recursive(_SIMPLE, _extend, max_leaves=12)

_FUNCTIONS = st.tuples(
    st.lists(_STMT_TREES, min_size=1, max_size=4),
    st.booleans(),  # trailing return
    st.booleans(),  # async def
)


def _render_stmt(tree, indent: int, lines: list[str], is_async: bool) -> None:
    pad = "    " * indent
    kind = tree[0]
    if kind == "assign":
        lines.append(f"{pad}{tree[1]} = cond()")
    elif kind == "call":
        lines.append(f"{pad}helper(x)")
    elif kind == "awaitstmt":
        lines.append(f"{pad}await gate()" if is_async else f"{pad}helper(y)")
    elif kind == "return":
        lines.append(f"{pad}return None")
    elif kind == "raise":
        lines.append(f"{pad}raise ValueError()")
    elif kind in ("break", "continue"):
        lines.append(f"{pad}{kind}")
    elif kind == "if":
        (body, tail), orelse = tree[1], tree[2]
        lines.append(f"{pad}if cond():")
        _render_block(body, indent + 1, lines, is_async, tail)
        if orelse is not None:
            lines.append(f"{pad}else:")
            _render_block(orelse, indent + 1, lines, is_async, None)
    elif kind in ("while", "for"):
        body, tail = tree[1]
        header = "while cond():" if kind == "while" else "for item in seq:"
        lines.append(f"{pad}{header}")
        _render_block(body, indent + 1, lines, is_async, tail)
    elif kind in ("with", "awith"):
        prefix = "async " if kind == "awith" and is_async else ""
        lines.append(f"{pad}{prefix}with ctx() as handle:")
        _render_block(tree[1], indent + 1, lines, is_async, None)
    elif kind == "tryfin":
        lines.append(f"{pad}try:")
        _render_block(tree[1], indent + 1, lines, is_async, None)
        lines.append(f"{pad}finally:")
        _render_block(tree[2], indent + 1, lines, is_async, None)
    elif kind == "tryexc":
        body, tail = tree[1]
        lines.append(f"{pad}try:")
        _render_block(body, indent + 1, lines, is_async, tail)
        lines.append(f"{pad}except ValueError:")
        _render_block(tree[2], indent + 1, lines, is_async, None)
    else:  # pragma: no cover - generator and renderer must agree
        raise AssertionError(kind)


def _render_block(block, indent, lines, is_async, tail) -> None:
    for tree in block:
        _render_stmt(tree, indent, lines, is_async)
    if tail is not None:
        _render_stmt(tail, indent, lines, is_async)


def _render_function(spec) -> str:
    trees, trailing_return, is_async = spec
    lines = ["async def fn(x, seq):" if is_async else "def fn(x, seq):"]
    _render_block(trees, 1, lines, is_async, None)
    if trailing_return:
        lines.append("    return x")
    return "\n".join(lines) + "\n"


def _parse_fn(source: str):
    node = ast.parse(source).body[0]
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    return node


def _lexical_stmts(fn) -> list[ast.stmt]:
    """Every statement in the function body, in source order, not
    descending into nested definitions (the generator emits none)."""
    out: list[ast.stmt] = []

    def rec(block: list[ast.stmt]) -> None:
        for stmt in block:
            out.append(stmt)
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                    rec(sub)
            for handler in getattr(stmt, "handlers", []) or []:
                rec(handler.body)

    rec(fn.body)
    return out


# -- CFG properties -----------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(_FUNCTIONS)
def test_every_statement_owns_exactly_one_node(spec):
    fn = _parse_fn(_render_function(spec))
    cfg = build_cfg(fn)
    stmts = _lexical_stmts(fn)
    assert set(cfg.by_stmt) == set(stmts)
    assert len(cfg.by_stmt) == len(stmts)
    stmt_nodes = list(cfg.stmt_nodes())
    assert len(stmt_nodes) == len(stmts)
    assert len({node.index for node in stmt_nodes}) == len(stmt_nodes)


@settings(max_examples=120, deadline=None)
@given(_FUNCTIONS)
def test_generated_code_is_fully_reachable(spec):
    fn = _parse_fn(_render_function(spec))
    cfg = build_cfg(fn)
    reachable = cfg.reachable()
    assert cfg.exit in reachable
    for node in cfg.nodes:
        if node.kind in (STMT, WITH_EXIT):
            assert node.index in reachable, ast.unparse(node.stmt or node.ref)


def _reaches_without(cfg, start: int, banned: int, targets: set[int]) -> bool:
    queue = deque([start])
    seen = {start, banned}
    while queue:
        for succ in cfg.nodes[queue.popleft()].succs:
            if succ in targets:
                return True
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return False


def _unguarded_finally_trys(fn) -> list[ast.Try]:
    """``try/finally`` statements not nested inside the body of a
    ``try`` that has handlers. Inside such a body the builder's "any
    statement may raise into the handler" edge legitimately bypasses
    the nested finally (an over-approximation, safe for the
    must-analyses), so the interception property only holds outside.
    """
    found: list[ast.Try] = []

    def rec(block: list[ast.stmt], guarded: bool) -> None:
        for stmt in block:
            if isinstance(stmt, ast.Try):
                if stmt.finalbody and not guarded:
                    found.append(stmt)
                inner = guarded or bool(stmt.handlers)
                rec(stmt.body, inner)
                rec(stmt.orelse, guarded)
                rec(stmt.finalbody, guarded)
                for handler in stmt.handlers:
                    rec(handler.body, guarded)
            else:
                for attr in ("body", "orelse"):
                    sub = getattr(stmt, attr, None)
                    if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                        rec(sub, guarded)

    rec(fn.body, False)
    return found


@settings(max_examples=120, deadline=None)
@given(_FUNCTIONS)
def test_try_finally_intercepts_every_continuation(spec):
    fn = _parse_fn(_render_function(spec))
    cfg = build_cfg(fn)
    exits = {cfg.exit, cfg.raise_exit}
    for stmt in _unguarded_finally_trys(fn):
        finally_head = cfg.by_stmt[stmt.finalbody[0]]
        inner: list[ast.stmt] = []
        for block in (stmt.body, *[h.body for h in stmt.handlers]):
            sub = ast.Module(body=list(block), type_ignores=[])
            inner.extend(
                s for s in ast.walk(sub) if isinstance(s, ast.stmt)
            )
        for body_stmt in inner:
            index = cfg.by_stmt.get(body_stmt)
            if index is None:
                continue
            assert not _reaches_without(cfg, index, finally_head, exits), (
                f"{ast.unparse(body_stmt)} escapes the finally block"
            )


@settings(max_examples=80, deadline=None)
@given(_FUNCTIONS)
def test_cfg_is_stable_across_reparses(spec):
    source = _render_function(spec)
    first = build_cfg(_parse_fn(source))
    second = build_cfg(_parse_fn(source))

    def shape(cfg):
        return [
            (
                node.kind,
                node.is_yield,
                node.line,
                tuple(sorted(node.succs)),
                tuple(sorted(node.preds)),
            )
            for node in cfg.nodes
        ]

    assert shape(first) == shape(second)


def test_return_routes_through_finally():
    fn = _parse_fn(
        "def fn(stream):\n"
        "    try:\n"
        "        return stream.read()\n"
        "    finally:\n"
        "        stream.close()\n"
    )
    cfg = build_cfg(fn)
    ret = cfg.by_stmt[fn.body[0].body[0]]
    close = cfg.by_stmt[fn.body[0].finalbody[0]]
    assert cfg.nodes[ret].succs == {close}
    assert cfg.exit in cfg.nodes[close].succs


def test_yield_points_cover_await_and_async_with():
    fn = _parse_fn(
        "async def fn(self):\n"
        "    value = await self.fetch()\n"
        "    plain = self.peek()\n"
        "    async with self.lock:\n"
        "        plain = value\n"
    )
    cfg = build_cfg(fn)
    flags = {
        ast.unparse(node.stmt): node.is_yield for node in cfg.stmt_nodes()
    }
    assert flags["value = await self.fetch()"]
    assert not flags["plain = self.peek()"]
    assert flags["async with self.lock:\n    plain = value"]
    with_exits = [n for n in cfg.nodes if n.kind == WITH_EXIT]
    assert len(with_exits) == 1 and with_exits[0].is_yield


# -- dataflow -----------------------------------------------------------------


def test_reaching_definitions_kill_and_merge():
    fn = _parse_fn(
        "def fn(flag):\n"
        "    value = 1\n"
        "    if flag:\n"
        "        value = 2\n"
        "    sink(value)\n"
    )
    cfg = build_cfg(fn)
    rdefs = reaching_definitions(cfg)
    sink = cfg.by_stmt[fn.body[2]]
    first = cfg.by_stmt[fn.body[0]]
    second = cfg.by_stmt[fn.body[1].body[0]]
    value_defs = {d for name, d in rdefs[sink] if name == "value"}
    assert value_defs == {first, second}  # merge keeps both
    assert ("flag", cfg.entry) in rdefs[sink]  # params defined at entry
    # The redefinition kills the first assignment on its own path.
    assert {d for name, d in rdefs[second] if name == "value"} == {first}


def test_locks_held_is_a_must_analysis():
    fn = _parse_fn(
        "async def fn(self, flag):\n"
        "    if flag:\n"
        "        async with self._state_lock:\n"
        "            inside = 1\n"
        "    after = 2\n"
    )
    cfg = build_cfg(fn)
    held = locks_held(cfg, lock_key)
    inside = cfg.by_stmt[fn.body[0].body[0].body[0]]
    after = cfg.by_stmt[fn.body[1]]
    assert held[inside] == {"self._state_lock"}
    assert held[after] == frozenset()  # released on one path, absent on the other


def test_guarantees_effect_needs_every_path():
    source = (
        "def one_branch(stream, flag):\n"
        "    stream.write(b'x')\n"
        "    if flag:\n"
        "        stream.flush()\n"
        "def finally_block(stream):\n"
        "    stream.write(b'x')\n"
        "    try:\n"
        "        stream.seek(0)\n"
        "    finally:\n"
        "        stream.flush()\n"
    )
    module = ast.parse(source)

    def flushes(node) -> bool:
        # Only simple expression statements: an ``if`` node's own
        # execution is just its test, not the flush in its body.
        if not isinstance(node.stmt, ast.Expr):
            return False
        return "flush" in ast.unparse(node.stmt)

    partial = build_cfg(module.body[0])
    write = partial.by_stmt[module.body[0].body[0]]
    assert not guarantees_effect(partial, write, flushes)

    total = build_cfg(module.body[1])
    write = total.by_stmt[module.body[1].body[0]]
    assert guarantees_effect(total, write, flushes)


def test_yield_on_some_path_endpoints_count():
    fn = _parse_fn(
        "async def fn(self):\n"
        "    a = self.x\n"
        "    await self.gate()\n"
        "    self.x = a\n"
        "    b = self.x\n"
        "    self.x = b\n"
    )
    cfg = build_cfg(fn)
    read_a = cfg.by_stmt[fn.body[0]]
    write_a = cfg.by_stmt[fn.body[2]]
    read_b = cfg.by_stmt[fn.body[3]]
    write_b = cfg.by_stmt[fn.body[4]]
    assert yield_on_some_path(cfg, read_a, write_a)
    assert not yield_on_some_path(cfg, read_b, write_b)
    # A statement that itself awaits is its own yield point.
    awaits = cfg.by_stmt[fn.body[1]]
    assert yield_on_some_path(cfg, awaits, awaits)


# -- module summaries ---------------------------------------------------------

_JOURNAL = (
    "import os\n"
    "class Journal:\n"
    "    def _commit(self):\n"
    "        self._stream.flush()\n"
    "        if self.fsync:\n"
    "            os.fsync(self._stream.fileno())\n"
    "    def _maybe(self):\n"
    "        if self.fsync:\n"
    "            self._stream.flush()\n"
    "    def append(self, line):\n"
    "        self._stream.write(line)\n"
    "        self._commit()\n"
)


def _is_flush(call: ast.Call) -> bool:
    func = call.func
    return isinstance(func, ast.Attribute) and "flush" in func.attr.lower()


def test_flush_guarantees_proves_helpers_by_cfg():
    graph = ModuleGraph(ast.parse(_JOURNAL))
    proven = graph.flush_guarantees(_is_flush)
    assert proven["Journal._commit"]  # no "flush" in the name: proved by CFG
    assert not proven["Journal._maybe"]  # one branch only
    assert proven["Journal.append"]  # transitively through _commit


def test_escaping_exceptions_respects_handlers():
    source = (
        "class H:\n"
        "    def _helper(self):\n"
        "        raise KeyError('k')\n"
        "    def _caught(self):\n"
        "        try:\n"
        "            self._helper()\n"
        "        except KeyError:\n"
        "            return None\n"
        "    def _dispatch(self):\n"
        "        self._caught()\n"
        "        self._helper()\n"
        "        raise weird()\n"
    )
    graph = ModuleGraph(ast.parse(source))
    escaping = graph.escaping_exceptions()
    assert set(escaping["H._caught"]) == set()
    assert set(escaping["H._helper"]) == {"KeyError"}
    # The dispatch sees the helper's KeyError plus its own opaque raise.
    assert set(escaping["H._dispatch"]) == {"KeyError", DYNAMIC}
