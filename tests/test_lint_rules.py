"""fenlint: golden-fixture rule tests plus framework behavior.

Each rule has a paired bad/good fixture under ``tests/lint_fixtures/``.
Expected finding lines are the fixture lines tagged ``# [bad]`` — the
table test asserts the *exact* (rule, line) set so a rule that drifts
(extra findings, missed findings, off-by-one anchors) fails loudly.
Scoped rules get their fixtures under matching path segments
(``serve/``, ``core/``) because scoping matches directory parts.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    all_rules,
    lint_paths,
    render_github,
    render_json,
)
from repro.lint.base import Rule
from repro.lint.cli import main as lint_main
from repro.lint.engine import PARSE_ERROR_RULE, changed_files, lint_files

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent

BAD_MARKER = "# [bad]"


def marker_lines(fixture: Path) -> set[int]:
    return {
        lineno
        for lineno, text in enumerate(
            fixture.read_text(encoding="utf-8").splitlines(), start=1
        )
        if BAD_MARKER in text
    }


def run_rule(rule: str, *relpaths: str, root: Path = FIXTURES):
    return lint_paths(list(relpaths), root=root, select=[rule])


RULE_FIXTURES = [
    ("blocking-io-in-async", "serve/async_bad.py", "serve/async_good.py"),
    ("journal-durability", "serve/durability_bad.py", "serve/durability_good.py"),
    (
        "journal-durability",
        "flow_bad/serve/durability_flow_bad.py",
        "flow_good/serve/durability_flow_good.py",
    ),
    (
        "async-interleaving-race",
        "flow_bad/serve/interleaving_bad.py",
        "flow_good/serve/interleaving_good.py",
    ),
    (
        "lock-discipline",
        "flow_bad/serve/locks_bad.py",
        "flow_good/serve/locks_good.py",
    ),
    (
        "unmapped-exception-flow",
        "flow_bad/serve/exception_flow_bad.py",
        "flow_good/serve/exception_flow_good.py",
    ),
    ("nondeterminism", "core/determinism_bad.py", "core/determinism_good.py"),
    ("swallowed-exception", "swallow_bad.py", "swallow_good.py"),
    ("float-similarity-compare", "floats_bad.py", "floats_good.py"),
    ("metric-naming", "metrics_bad.py", "metrics_good.py"),
    ("unguarded-span", "spans_bad.py", "spans_good.py"),
]


@pytest.mark.parametrize("rule,bad,good", RULE_FIXTURES)
def test_bad_fixture_exact_findings(rule, bad, good):
    expected = marker_lines(FIXTURES / bad)
    assert expected, f"fixture {bad} has no {BAD_MARKER} markers"
    result = run_rule(rule, bad)
    found = {(f.rule, f.line) for f in result.findings}
    assert found == {(rule, line) for line in sorted(expected)}


@pytest.mark.parametrize("rule,bad,good", RULE_FIXTURES)
def test_good_fixture_is_clean(rule, bad, good):
    result = run_rule(rule, good)
    assert result.findings == []
    assert result.exit_code == 0


def test_every_rule_has_a_fixture_pair():
    covered = {rule for rule, _, _ in RULE_FIXTURES} | {"wire-protocol-consistency"}
    assert {r.name for r in all_rules()} == covered


# -- cross-file rules ---------------------------------------------------------


def test_metric_kind_clash_across_files():
    result = run_rule("metric-naming", "kinds/first.py", "kinds/second.py")
    assert {(f.rule, f.path, f.line) for f in result.findings} == {
        ("metric-naming", "kinds/second.py", 5)
    }
    (finding,) = result.findings
    assert "histogram" in finding.message and "gauge" in finding.message


def test_wire_protocol_consistent_surface_is_clean():
    root = FIXTURES / "wire_good"
    result = lint_paths(["."], root=root, select=["wire-protocol-consistency"])
    assert result.findings == []


def test_wire_protocol_inconsistencies():
    root = FIXTURES / "wire_bad"
    result = lint_paths(["."], root=root, select=["wire-protocol-consistency"])
    messages = sorted(f.message for f in result.findings)
    assert len(messages) == 5
    assert any("'snapshot' has no ServeClient" in m for m in messages)
    assert any("'mystery' has no ServeClient" in m for m in messages)
    assert any("'mystery' is not documented" in m for m in messages)
    # Documented and handled, but clientless, is still a finding.
    assert any("'dedup' has no ServeClient" in m for m in messages)
    assert any("'orphan' that no server _dispatch handler" in m for m in messages)
    by_file = {f.path for f in result.findings}
    assert by_file == {"server.py", "client.py"}


def test_wire_protocol_silent_without_server_shape():
    # Trees with no _dispatch chain (all other fixtures) produce nothing.
    result = run_rule("wire-protocol-consistency", "swallow_bad.py", "floats_bad.py")
    assert result.findings == []


# -- suppressions -------------------------------------------------------------


def test_suppressions_trailing_above_and_wildcard():
    result = run_rule("swallowed-exception", "suppressed.py")
    assert result.suppressed == 3
    assert {(f.rule, f.line) for f in result.findings} == {
        ("swallowed-exception", line)
        for line in marker_lines(FIXTURES / "suppressed.py")
    }


# -- baseline -----------------------------------------------------------------


def test_baseline_absorbs_and_overflows(tmp_path):
    result = run_rule("swallowed-exception", "swallow_bad.py")
    assert len(result.findings) == 3

    baseline = Baseline.from_findings(result.findings)
    rerun = lint_paths(
        ["swallow_bad.py"],
        root=FIXTURES,
        select=["swallowed-exception"],
        baseline=baseline,
    )
    assert rerun.findings == []
    assert rerun.baselined == 3
    assert rerun.exit_code == 0

    # A *new* violation is not absorbed by the grandfathered budget.
    extra = tmp_path / "swallow_new.py"
    extra.write_text(
        "def fresh(work):\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        pass\n",
        encoding="utf-8",
    )
    overflow = lint_files(
        [FIXTURES / "swallow_bad.py", extra],
        root=FIXTURES,
        select=["swallowed-exception"],
        baseline=baseline,
    )
    assert len(overflow.findings) == 1
    assert overflow.findings[0].path.endswith("swallow_new.py")
    assert overflow.exit_code == 1


def test_baseline_fingerprints_survive_line_drift(tmp_path):
    original = (FIXTURES / "swallow_bad.py").read_text(encoding="utf-8")
    copy = tmp_path / "swallow_bad.py"
    copy.write_text(original, encoding="utf-8")
    before = lint_files([copy], root=tmp_path, select=["swallowed-exception"])
    baseline = Baseline.from_findings(before.findings)

    # Shift every finding down three lines; fingerprints must not move.
    copy.write_text("# drift\n# drift\n# drift\n" + original, encoding="utf-8")
    after = lint_files(
        [copy], root=tmp_path, select=["swallowed-exception"], baseline=baseline
    )
    assert after.findings == []
    assert after.baselined == 3


def test_baseline_round_trips_through_json(tmp_path):
    result = run_rule("swallowed-exception", "swallow_bad.py")
    path = tmp_path / "baseline.json"
    Baseline.from_findings(result.findings).write(path)
    loaded = Baseline.load(path)
    surviving, absorbed = loaded.filter(result.findings)
    assert surviving == [] and absorbed == 3


def test_committed_baseline_is_empty():
    document = json.loads(
        (REPO_ROOT / "fenlint-baseline.json").read_text(encoding="utf-8")
    )
    assert document["version"] == 1
    assert document["findings"] == {}


# -- determinism of output ----------------------------------------------------


def test_json_report_is_deterministic_across_runs():
    first = render_json(run_rule("swallowed-exception", "swallow_bad.py"))
    second = render_json(run_rule("swallowed-exception", "swallow_bad.py"))
    assert first == second
    document = json.loads(first)
    assert document["version"] == 1
    assert [f["line"] for f in document["findings"]] == sorted(
        f["line"] for f in document["findings"]
    )


# -- GitHub annotations (what the CI gate consumes) ---------------------------


def test_github_format_emits_error_commands_for_seeded_violation():
    result = run_rule("swallowed-exception", "swallow_bad.py")
    output = render_github(result)
    lines = output.splitlines()
    errors = [line for line in lines if line.startswith("::error ")]
    assert len(errors) == 3
    for line in errors:
        assert "file=swallow_bad.py" in line
        assert "title=fenlint(swallowed-exception)" in line
    assert lines[-1].startswith("fenlint: 3 finding(s)")


def test_github_format_escapes_workflow_command_data():
    result = run_rule("swallowed-exception", "swallow_bad.py")
    finding = result.findings[0]
    hacked = finding.__class__(
        path=finding.path,
        line=finding.line,
        col=finding.col,
        rule=finding.rule,
        message="evil %0A\r\ninjection",
        context=finding.context,
    )
    result.findings[0] = hacked
    output = render_github(result)
    assert "evil %250A%0D%0Ainjection" in output
    assert "\r" not in output.split("::error ", 1)[1].splitlines()[0]


# -- parse errors -------------------------------------------------------------


def test_unparseable_file_reports_parse_error(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def half(:\n", encoding="utf-8")
    result = lint_files([broken], root=tmp_path)
    assert [f.rule for f in result.findings] == [PARSE_ERROR_RULE]
    assert result.exit_code == 1


# -- CLI ----------------------------------------------------------------------


def test_cli_exit_codes_and_report_artifact(tmp_path, capsys):
    report = tmp_path / "report.json"
    code = lint_main(
        [
            "swallow_bad.py",
            "--root",
            str(FIXTURES),
            "--select",
            "swallowed-exception",
            "--format",
            "github",
            "--report",
            str(report),
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert out.count("::error ") == 3
    document = json.loads(report.read_text(encoding="utf-8"))
    assert len(document["findings"]) == 3

    assert (
        lint_main(
            [
                "swallow_good.py",
                "--root",
                str(FIXTURES),
                "--select",
                "swallowed-exception",
            ]
        )
        == 0
    )
    capsys.readouterr()


def test_cli_unreadable_baseline_exits_2(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("{\"version\": 99}", encoding="utf-8")
    code = lint_main(
        ["swallow_bad.py", "--root", str(FIXTURES), "--baseline", str(bad)]
    )
    assert code == 2
    assert "unreadable baseline" in capsys.readouterr().err


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert (
        lint_main(
            [
                "swallow_bad.py",
                "--root",
                str(FIXTURES),
                "--select",
                "swallowed-exception",
                "--baseline",
                str(baseline),
                "--write-baseline",
            ]
        )
        == 0
    )
    assert (
        lint_main(
            [
                "swallow_bad.py",
                "--root",
                str(FIXTURES),
                "--select",
                "swallowed-exception",
                "--baseline",
                str(baseline),
            ]
        )
        == 0
    )
    capsys.readouterr()


# -- --changed ----------------------------------------------------------------


def git(*args: str, cwd: Path) -> None:
    subprocess.run(
        ["git", *args],
        cwd=cwd,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(cwd),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


def test_changed_lints_only_touched_files(tmp_path):
    git("init", "-q", cwd=tmp_path)
    committed = tmp_path / "committed.py"
    committed.write_text(
        "def old(work):\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        pass\n",
        encoding="utf-8",
    )
    git("add", "committed.py", cwd=tmp_path)
    git("commit", "-q", "-m", "seed", cwd=tmp_path)

    fresh = tmp_path / "fresh.py"
    fresh.write_text(
        "def new(work):\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        pass\n",
        encoding="utf-8",
    )
    result = lint_paths(
        ["."],
        root=tmp_path,
        select=["swallowed-exception"],
        changed_ref="HEAD",
    )
    # Only the untracked file is linted; the committed violation is not.
    assert {f.path for f in result.findings} == {"fresh.py"}
    assert result.files_checked == 1


_SWALLOW = (
    "def handle(work):\n"
    "    try:\n"
    "        work()\n"
    "    except Exception:\n"
    "        pass\n"
)


def test_changed_diffs_against_merge_base(tmp_path):
    """``--changed main`` on a feature branch must mean "what this
    branch touched", not "every file main changed since the branch
    point"."""
    git("init", "-q", cwd=tmp_path)
    shared = tmp_path / "shared.py"
    shared.write_text("def shared():\n    return 1\n", encoding="utf-8")
    git("add", "shared.py", cwd=tmp_path)
    git("commit", "-q", "-m", "seed", cwd=tmp_path)
    git("branch", "-m", "main", cwd=tmp_path)

    git("checkout", "-q", "-b", "feature", cwd=tmp_path)
    (tmp_path / "feature.py").write_text(_SWALLOW, encoding="utf-8")
    git("add", "feature.py", cwd=tmp_path)
    git("commit", "-q", "-m", "feature work", cwd=tmp_path)

    # main moves on and edits shared.py (introducing a violation there).
    git("checkout", "-q", "main", cwd=tmp_path)
    shared.write_text(_SWALLOW, encoding="utf-8")
    git("add", "shared.py", cwd=tmp_path)
    git("commit", "-q", "-m", "main-only change", cwd=tmp_path)
    git("checkout", "-q", "feature", cwd=tmp_path)

    result = lint_paths(
        ["."],
        root=tmp_path,
        select=["swallowed-exception"],
        changed_ref="main",
    )
    # shared.py differs between main's tip and this branch, but the
    # branch never touched it: only feature.py is linted.
    assert result.files_checked == 1
    assert {f.path for f in result.findings} == {"feature.py"}


def test_changed_skips_deleted_files(tmp_path):
    git("init", "-q", cwd=tmp_path)
    keep = tmp_path / "keep.py"
    gone = tmp_path / "gone.py"
    keep.write_text("def keep():\n    return 1\n", encoding="utf-8")
    gone.write_text("def gone():\n    return 2\n", encoding="utf-8")
    git("add", "keep.py", "gone.py", cwd=tmp_path)
    git("commit", "-q", "-m", "seed", cwd=tmp_path)

    keep.write_text(_SWALLOW, encoding="utf-8")
    gone.unlink()

    assert gone.resolve() not in changed_files("HEAD", tmp_path)
    result = lint_paths(
        ["."],
        root=tmp_path,
        select=["swallowed-exception"],
        changed_ref="HEAD",
    )
    assert result.files_checked == 1
    assert {f.path for f in result.findings} == {"keep.py"}


def test_changed_rejects_unknown_ref(tmp_path):
    git("init", "-q", cwd=tmp_path)
    (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
    git("add", "a.py", cwd=tmp_path)
    git("commit", "-q", "-m", "seed", cwd=tmp_path)
    with pytest.raises(ValueError, match="no-such-ref"):
        changed_files("no-such-ref", tmp_path)


# -- severity and the time budget ---------------------------------------------


def test_severity_is_stamped_and_rendered(tmp_path):
    class SoftRule(Rule):
        name = "soft-launch-test"
        description = "test-only warning-severity rule"
        severity = "warning"

        def check(self, source):
            yield source.finding(self.name, None, "soft finding", line=1)

    target = tmp_path / "m.py"
    target.write_text("x = 1\n", encoding="utf-8")
    result = lint_files([target], tmp_path, rules=[SoftRule()])
    assert [f.severity for f in result.findings] == ["warning"]
    assert "::warning file=m.py" in render_github(result)
    assert json.loads(render_json(result))["findings"][0]["severity"] == "warning"


def test_time_budget_flag(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
    argv = [str(tmp_path), "--root", str(tmp_path)]
    assert lint_main([*argv, "--time-budget", "600"]) == 0
    assert "budget 600s" in capsys.readouterr().err
    assert lint_main([*argv, "--time-budget", "0"]) == 2
    assert "budget exceeded" in capsys.readouterr().err


# -- the repo itself ----------------------------------------------------------


def test_src_tree_is_fenlint_clean():
    """``repro lint src/`` must exit 0 with an *empty* baseline."""
    result = lint_paths(["src"], root=REPO_ROOT)
    rendered = "\n".join(
        f"{f.path}:{f.line}: {f.rule}: {f.message}" for f in result.findings
    )
    assert result.findings == [], f"fenlint findings in src:\n{rendered}"


def test_module_entry_point_runs():
    completed = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0
    assert "journal-durability" in completed.stdout
