"""Tests for the AS topology and the Internet-like generator."""

from __future__ import annotations

import random

import pytest

from repro.bgp.topology import (
    Relationship,
    generate_internet_like,
    stub_ases,
)


class TestRelationship:
    def test_inverse(self):
        assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER
        assert Relationship.PEER.inverse() is Relationship.PEER


class TestASTopology:
    def test_add_and_query(self, small_topology):
        assert 1 in small_topology
        assert len(small_topology) == 8
        assert small_topology.relationship(1, 11) is Relationship.CUSTOMER
        assert small_topology.relationship(11, 1) is Relationship.PROVIDER
        assert small_topology.relationship(1, 2) is Relationship.PEER
        assert small_topology.relationship(1, 13) is None

    def test_duplicate_as_rejected(self, small_topology):
        with pytest.raises(ValueError):
            small_topology.add_as(1)

    def test_self_link_rejected(self, small_topology):
        with pytest.raises(ValueError):
            small_topology.add_customer_link(1, 1)
        with pytest.raises(ValueError):
            small_topology.add_peer_link(2, 2)

    def test_unknown_as_rejected(self, small_topology):
        with pytest.raises(KeyError):
            small_topology.add_customer_link(1, 999)
        with pytest.raises(KeyError):
            small_topology.providers_of(999)

    def test_providers_customers_peers(self, small_topology):
        assert small_topology.providers_of(22) == {11, 12}
        assert small_topology.customers_of(1) == {11, 12}
        assert small_topology.peers_of(1) == {2}

    def test_neighbors_include_all_relationships(self, small_topology):
        neighbors = dict(small_topology.neighbors(12))
        assert neighbors == {
            22: Relationship.CUSTOMER,
            1: Relationship.PROVIDER,
            2: Relationship.PROVIDER,
        }

    def test_remove_link(self, small_topology):
        assert small_topology.remove_link(1, 11)
        assert small_topology.relationship(1, 11) is None
        assert not small_topology.remove_link(1, 11)

    def test_remove_peer_link_either_direction(self, small_topology):
        assert small_topology.remove_link(2, 1)
        assert small_topology.relationship(1, 2) is None

    def test_edge_count(self, small_topology):
        # 8 customer links + 1 peer link.
        assert small_topology.edge_count() == 9

    def test_copy_is_independent(self, small_topology):
        clone = small_topology.copy()
        clone.remove_link(1, 11)
        assert small_topology.relationship(1, 11) is Relationship.CUSTOMER
        clone.add_as(99)
        assert 99 not in small_topology


class TestGenerator:
    @pytest.fixture(scope="class")
    def generated(self):
        return generate_internet_like(
            random.Random(42), num_tier1=5, num_tier2=20, num_stubs=100
        )

    def test_sizes(self, generated):
        assert len(generated) == 125
        tiers = [node.tier for node in generated.nodes.values()]
        assert tiers.count(1) == 5
        assert tiers.count(2) == 20
        assert tiers.count(3) == 100

    def test_tier1_full_clique(self, generated):
        tier1s = [asn for asn, node in generated.nodes.items() if node.tier == 1]
        for a in tier1s:
            assert generated.peers_of(a) >= set(tier1s) - {a}

    def test_tier1s_have_no_providers(self, generated):
        tier1s = [asn for asn, node in generated.nodes.items() if node.tier == 1]
        for asn in tier1s:
            assert not generated.providers_of(asn)

    def test_every_tier2_has_tier1_provider(self, generated):
        for asn, node in generated.nodes.items():
            if node.tier == 2:
                providers = generated.providers_of(asn)
                assert providers
                assert all(generated.nodes[p].tier == 1 for p in providers)

    def test_every_stub_has_provider(self, generated):
        for asn in stub_ases(generated):
            providers = generated.providers_of(asn)
            assert 1 <= len(providers) <= 2
            assert all(generated.nodes[p].tier == 2 for p in providers)

    def test_all_ases_have_locations(self, generated):
        assert all(node.location is not None for node in generated.nodes.values())

    def test_deterministic_in_seed(self):
        a = generate_internet_like(random.Random(7), num_tier1=3, num_tier2=8, num_stubs=30)
        b = generate_internet_like(random.Random(7), num_tier1=3, num_tier2=8, num_stubs=30)
        assert sorted(a.nodes) == sorted(b.nodes)
        for asn in a.nodes:
            assert a.providers_of(asn) == b.providers_of(asn)
            assert a.peers_of(asn) == b.peers_of(asn)

    def test_stub_ases_helper(self, generated):
        stubs = stub_ases(generated)
        assert len(stubs) == 100
        assert stubs == sorted(stubs)
