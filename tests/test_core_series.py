"""Tests for the vector time series container."""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest

from repro.core.series import VectorSeries
from repro.core.vector import UNKNOWN, RoutingVector, StateCatalog


class TestAppend:
    def test_append_mapping_and_iterate(self, t0):
        series = VectorSeries(["a", "b"])
        series.append_mapping({"a": "X", "b": "Y"}, t0)
        series.append_mapping({"a": "X"}, t0 + timedelta(days=1))
        assert len(series) == 2
        assert series[1].state_of("b") == UNKNOWN
        assert [v.time for v in series] == series.times

    def test_timestamps_must_increase(self, t0):
        series = VectorSeries(["a"])
        series.append_mapping({"a": "X"}, t0)
        with pytest.raises(ValueError):
            series.append_mapping({"a": "X"}, t0)

    def test_vector_needs_timestamp(self, t0):
        series = VectorSeries(["a"])
        vector = RoutingVector.from_mapping({"a": "X"}, catalog=series.catalog)
        with pytest.raises(ValueError):
            series.append(vector)

    def test_networks_must_match(self, t0):
        series = VectorSeries(["a"])
        vector = RoutingVector.from_mapping(
            {"b": "X"}, catalog=series.catalog, time=t0
        )
        with pytest.raises(ValueError):
            series.append(vector)

    def test_catalog_must_be_shared(self, t0):
        series = VectorSeries(["a"])
        vector = RoutingVector.from_mapping({"a": "X"}, catalog=StateCatalog(), time=t0)
        with pytest.raises(ValueError):
            series.append(vector)

    def test_from_vectors(self, t0):
        catalog = StateCatalog()
        vectors = [
            RoutingVector.from_mapping({"a": "X"}, catalog=catalog, time=t0),
            RoutingVector.from_mapping({"a": "Y"}, catalog=catalog, time=t0 + timedelta(1)),
        ]
        series = VectorSeries.from_vectors(vectors)
        assert len(series) == 2

    def test_from_vectors_empty_rejected(self):
        with pytest.raises(ValueError):
            VectorSeries.from_vectors([])


class TestViews:
    def test_matrix_shape_and_cache(self, simple_series):
        matrix = simple_series.matrix
        assert matrix.shape == (5, 4)
        assert simple_series.matrix is matrix  # cached

    def test_matrix_invalidated_on_append(self, simple_series, t0):
        _ = simple_series.matrix
        simple_series.append_mapping({"n1": "A"}, t0 + timedelta(days=10))
        assert simple_series.matrix.shape == (6, 4)

    def test_index_at(self, simple_series, t0):
        assert simple_series.index_at(t0) == 0
        assert simple_series.index_at(t0 + timedelta(days=2, hours=5)) == 2
        with pytest.raises(KeyError):
            simple_series.index_at(t0 - timedelta(days=1))

    def test_between(self, simple_series, t0):
        subset = simple_series.between(t0 + timedelta(days=1), t0 + timedelta(days=3))
        assert len(subset) == 2
        assert subset.times[0] == t0 + timedelta(days=1)

    def test_select_networks(self, simple_series):
        subset = simple_series.select_networks(["n3", "n1"])
        assert subset.networks == ("n1", "n3")  # original order preserved
        assert subset[0].state_of("n3") == "B"
        assert len(subset) == len(simple_series)

    def test_aggregate_over_time(self, simple_series):
        totals = simple_series.aggregate_over_time()
        assert totals["A"].tolist() == [2, 2, 2, 1, 1]
        assert totals["B"].tolist() == [2, 2, 2, 3, 3]

    def test_aggregate_over_time_weighted(self, simple_series):
        weights = np.array([10.0, 1.0, 1.0, 1.0])
        totals = simple_series.aggregate_over_time(weights)
        assert totals["A"].tolist() == [11, 11, 11, 1, 1]

    def test_copy_is_independent(self, simple_series, t0):
        clone = simple_series.copy()
        clone.append_mapping({"n1": "A"}, t0 + timedelta(days=30))
        assert len(simple_series) == 5
        assert len(clone) == 6
