"""Tests for Gao-Rexford route computation.

Includes a property-based valley-free check over random topologies:
every selected path must consist of zero or more customer→provider
hops, at most one peer hop, then zero or more provider→customer hops.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.policy import Announcement, Route, RouteKind, Scope, better
from repro.bgp.routing import catchments_from_routes, compute_routes
from repro.bgp.topology import ASTopology, Relationship, generate_internet_like


def single(topo, origin, label="X", **kwargs):
    return compute_routes(topo, [Announcement(origin=origin, label=label, **kwargs)])


class TestPolicyPreference:
    def test_route_preference_ranks(self):
        customer = Route("X", 9, (1, 9), RouteKind.CUSTOMER, 5)
        peer = Route("X", 9, (1, 9), RouteKind.PEER, 1)
        assert better(customer, peer) is customer

    def test_shorter_metric_wins_within_rank(self):
        short = Route("X", 9, (1, 9), RouteKind.PEER, 1)
        long = Route("X", 9, (1, 5, 9), RouteKind.PEER, 2)
        assert better(short, long) is short

    def test_lower_next_hop_breaks_ties(self):
        a = Route("X", 9, (1, 3, 9), RouteKind.PEER, 2)
        b = Route("X", 9, (1, 5, 9), RouteKind.PEER, 2)
        assert better(a, b) is a


class TestComputeRoutes:
    def test_origin_has_origin_route(self, small_topology):
        outcome = single(small_topology, 21)
        assert outcome[21].kind is RouteKind.ORIGIN
        assert outcome[21].path == (21,)

    def test_provider_learns_customer_route(self, small_topology):
        outcome = single(small_topology, 21)
        assert outcome[11].kind is RouteKind.CUSTOMER
        assert outcome[11].path == (11, 21)

    def test_peer_route_crosses_once(self, small_topology):
        outcome = single(small_topology, 11)  # R1 announces
        # T2 learns from its peer T1 (which has the customer route).
        assert outcome[2].kind is RouteKind.PEER
        assert outcome[2].path == (2, 1, 11)

    def test_provider_routes_ride_down(self, small_topology):
        outcome = single(small_topology, 21)
        # S3 reaches via R3 <- T2 <- peer T1 <- R1 <- S1.
        assert outcome[23].kind is RouteKind.PROVIDER
        assert outcome[23].path == (23, 13, 2, 1, 11, 21)

    def test_customer_preferred_over_peer(self, small_topology):
        # T1 sees origin S1 via customer R1 and nothing else; now also
        # make origin multihomed so T2 would offer a peer route: the
        # customer route must win at T1.
        outcome = single(small_topology, 22)  # S2: customer of R1 and R2
        assert outcome[1].kind is RouteKind.CUSTOMER

    def test_all_ases_reach_connected_origin(self, small_topology):
        outcome = single(small_topology, 21)
        assert len(outcome) == len(small_topology)

    def test_unreachable_when_partitioned(self, small_topology):
        small_topology.remove_link(11, 21)
        outcome = single(small_topology, 21)
        assert outcome.get(1) is None
        assert outcome.label_of(1) == "unreach"

    def test_disabled_links(self, small_topology):
        outcome = compute_routes(
            small_topology,
            [Announcement(origin=21, label="X")],
            disabled_links=[(11, 21)],
        )
        assert outcome.get(11) is None

    def test_anycast_two_origins_split(self, small_topology):
        outcome = compute_routes(
            small_topology,
            [Announcement(origin=21, label="A"), Announcement(origin=23, label="B")],
        )
        # Each origin's direct provider picks its customer.
        assert outcome.label_of(11) == "A"
        assert outcome.label_of(13) == "B"

    def test_duplicate_origin_rejected(self, small_topology):
        with pytest.raises(ValueError):
            compute_routes(
                small_topology,
                [Announcement(origin=21, label="A"), Announcement(origin=21, label="B")],
            )

    def test_unknown_origin_rejected(self, small_topology):
        with pytest.raises(KeyError):
            single(small_topology, 999)

    def test_prepend_shifts_choice(self, small_topology):
        # S2 is customer of R1 and R2. T1 has both as customers; with no
        # prepend T1 uses the lower-ASN next hop (R1, metric tie).
        base = single(small_topology, 22)
        assert base[1].next_hop == 11
        # Prepending toward R1 makes the R2 path strictly better at T1.
        prepended = single(small_topology, 22, prepend={11: 2})
        assert prepended[1].next_hop == 12

    def test_customer_cone_scope_limits_propagation(self, small_topology):
        outcome = compute_routes(
            small_topology,
            [Announcement(origin=11, label="L", scope=Scope.CUSTOMER_CONE)],
        )
        # R1's customers still hear it...
        assert outcome.get(21) is not None
        assert outcome.get(22) is not None
        # ...but its provider T1 (and the rest of the world) does not.
        assert outcome.get(1) is None
        assert outcome.get(2) is None
        assert outcome.get(23) is None

    def test_catchments_from_routes(self, small_topology):
        outcome = single(small_topology, 21, label="SITE")
        catchments = catchments_from_routes(outcome, [21, 23, 1])
        assert catchments == {21: "SITE", 23: "SITE", 1: "SITE"}


def _relationship_steps(topo: ASTopology, path: tuple[int, ...]) -> list[Relationship]:
    steps = []
    for a, b in zip(path, path[1:]):
        rel = topo.relationship(a, b)
        assert rel is not None, f"path uses nonexistent link {a}-{b}"
        steps.append(rel)
    return steps


def _is_valley_free(steps: list[Relationship]) -> bool:
    """Forward path steps, from source to origin, must be
    provider* peer? customer* when read source→origin... the selected
    path is stored self→origin so each step is (self, next): toward the
    origin. Valley-free: a sequence of PROVIDER steps (going up), at
    most one PEER, then CUSTOMER steps (going down).
    """
    phase = 0  # 0 = ascending via providers, 1 = after peer, 2 = descending
    for rel in steps:
        if rel is Relationship.PROVIDER:
            if phase != 0:
                return False
        elif rel is Relationship.PEER:
            if phase != 0:
                return False
            phase = 1
        elif rel is Relationship.CUSTOMER:
            phase = 2
    return True


class TestValleyFreeProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_paths_are_valley_free_and_consistent(self, seed):
        rng = random.Random(seed)
        topo = generate_internet_like(rng, num_tier1=3, num_tier2=8, num_stubs=40)
        stubs = [asn for asn, node in topo.nodes.items() if node.tier == 3]
        origins = rng.sample(stubs, 2)
        outcome = compute_routes(
            topo,
            [Announcement(origin=o, label=f"S{i}") for i, o in enumerate(origins)],
        )
        for asn, route in outcome.routes.items():
            assert route.path[0] == asn
            assert route.path[-1] == route.origin
            assert len(set(route.path)) == len(route.path), "loop in path"
            steps = _relationship_steps(topo, route.path)
            # Wait: route.path runs self→origin; the *traffic* direction.
            # Valley-free on that direction means: down-steps (to
            # customers) never precede up-steps. Our helper encodes it.
            assert _is_valley_free(steps), f"valley in {route.path}"
            assert route.metric >= len(route.path) - 1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_deterministic(self, seed):
        rng = random.Random(seed)
        topo = generate_internet_like(rng, num_tier1=3, num_tier2=6, num_stubs=25)
        stubs = [asn for asn, node in topo.nodes.items() if node.tier == 3]
        ann = [Announcement(origin=stubs[0], label="A")]
        first = compute_routes(topo, ann)
        second = compute_routes(topo, ann)
        assert {a: r.path for a, r in first.routes.items()} == {
            a: r.path for a, r in second.routes.items()
        }
