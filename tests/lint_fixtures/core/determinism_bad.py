"""Bad: ambient RNG and wall-clock reads in substrate code."""

import random
import time

import numpy as np


def jitter():
    return random.random()  # [bad]


def stamp():
    return time.time()  # [bad]


def build(count):
    rng = np.random.default_rng()  # [bad]
    values = list(range(count))
    np.random.shuffle(values)  # [bad]
    roller = random.Random()  # [bad]
    return rng, values, roller


def today():
    import datetime

    return datetime.date.today()  # [bad]
