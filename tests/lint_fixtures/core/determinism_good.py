"""Good: explicit seeded substrates and elapsed-time measurement."""

import random
import time

import numpy as np


def build(seed, count):
    rng = np.random.default_rng(seed)
    roller = random.Random(seed)
    return rng, roller, count


def sample(rng, values):
    return rng.choice(values)


def timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
