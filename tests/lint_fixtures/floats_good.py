"""Good: tolerance/threshold comparisons; sentinels and lookalikes."""

import math


def same_mode(phi, mode_phi, eps):
    return math.isclose(phi, mode_phi, abs_tol=eps)


def above_threshold(similarity, threshold):
    return similarity >= threshold


def sentinel(phi_label):
    return phi_label == "unknown"


def lookalike(graph, matrix):
    return graph == matrix and matrix.ndim != 2
