"""Good: spans created through the gated helper."""

from repro.obs import span


def timed(work):
    with span("compare", engine="tiled"):
        work()
