"""Bad: exact equality on similarity floats."""


def same_mode(phi, mode_phi):
    return phi == mode_phi  # [bad]


def changed(update):
    return update.similarity != update.prev_similarity  # [bad]


def zeroed(best_phi):
    return 0.0 == best_phi  # [bad]
