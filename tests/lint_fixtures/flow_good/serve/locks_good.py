"""lock-discipline good fixture.

Structured acquisition, awaiting (not blocking) under a lock, one
consistent nesting order, blocking work only after release, and the
semaphore-under-a-non-lock-name carve-out used by the client pool.
"""

import asyncio


async def _fetch(payload):
    await asyncio.sleep(0)
    return payload


class Coordinator:
    def __init__(self):
        self._state_lock = asyncio.Lock()
        self._io_lock = asyncio.Lock()
        self._slots = asyncio.Semaphore(8)

    async def structured_acquire(self):
        async with self._state_lock:
            return 1

    async def awaits_under_lock(self, payload):
        async with self._state_lock:
            return await _fetch(payload)  # awaiting under a lock is fine

    async def consistent_order(self):
        async with self._state_lock:
            async with self._io_lock:
                return 1

    async def consistent_order_again(self):
        async with self._state_lock:
            async with self._io_lock:
                return 2

    async def blocking_after_release(self, path):
        async with self._io_lock:
            payload = 1
        with open(path) as handle:  # lock already released here
            return handle.read() and payload

    async def bounded_slot(self):
        # Not named like a lock: the timeout-wrapped semaphore idiom
        # stays expressible (see repro.serve.pool).
        await asyncio.wait_for(self._slots.acquire(), timeout=1.0)
        try:
            return 1
        finally:
            self._slots.release()
