"""journal-durability good fixture for the call-graph upgrade.

``_commit`` has no flush-ish name; the CFG effect summary proves it
flushes on every normal-return path, so the group-commit split
(write in a helper, flush in the caller) needs no suppression.
"""

import os


class Journal:
    def __init__(self, stream, fsync):
        self._stream = stream
        self.fsync = fsync

    def _commit(self):
        self._stream.flush()
        if self.fsync:
            os.fsync(self._stream.fileno())

    def _write_record(self, line):
        self._stream.write(line + "\n")

    def append(self, line):
        self._write_record(line)
        self._commit()
        return True

    def append_group(self, lines):
        for line in lines:
            self._write_record(line)
        self._commit()
