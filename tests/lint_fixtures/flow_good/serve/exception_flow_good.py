"""unmapped-exception-flow good fixture.

Every raisable type either never escapes its helper or is mapped to
an ``ERR_*`` response by a ``_dispatch`` handler.
"""

ERR_BAD_COMMAND = "ERR bad_command"
ERR_INTERNAL = "ERR internal"


class ProtocolError(Exception):
    pass


class Handler:
    def __init__(self, table):
        self._table = table

    def _lookup(self, key):
        try:
            return self._table[key]
        except KeyError:
            return None  # handled internally: nothing escapes

    def _decode(self, line):
        if line is None:
            raise ProtocolError("empty")
        return line.split()

    def error_response(self, command):
        return ERR_INTERNAL + " " + command

    async def _dispatch(self, line):
        try:
            command, *args = self._decode(line)
        except ProtocolError:
            return ERR_BAD_COMMAND
        try:
            if command == "get":
                return self._lookup(args[0])
            raise ValueError(command)
        except ValueError:
            return self.error_response(command)
