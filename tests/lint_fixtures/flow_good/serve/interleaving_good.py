"""async-interleaving-race good fixture.

Each function is a pattern the rule must stay silent on: a lock
covering both ends, an atomic augmented assignment, an independent
publish, and a read/write pair with no yield point between them.
"""

import asyncio


class Tracker:
    def __init__(self):
        self._seq = 0
        self._inflight = 0
        self._topology = None
        self._lock = asyncio.Lock()

    async def _journal(self, value):
        await asyncio.sleep(0)
        return value

    async def locked_increment(self, payload):
        async with self._lock:
            seq = self._seq
            await self._journal(payload)
            self._seq = seq + 1  # one acquisition covers read and write

    async def atomic_counter(self, payload):
        self._inflight += 1  # AugAssign: atomic on the event loop
        try:
            await self._journal(payload)
        finally:
            self._inflight -= 1

    async def independent_publish(self, payload):
        data = await self._journal(payload)
        self._topology = data  # plain publish, not a lost update

    async def no_yield_between(self, payload):
        await self._journal(payload)
        seq = self._seq
        self._seq = seq + 1  # read and write with no await between them
