"""Client side of the consistent protocol surface."""


class Client:
    def request(self, command, **fields):
        return {"cmd": command, **fields}

    def ingest(self, states):
        return self.request("ingest", states=states)

    def stats(self):
        return self.request("stats")

    def snapshot(self):
        return self.request("snapshot")

    def vps(self, plan=None):
        if plan is None:
            return self.request("vps")
        return self.request("vps", plan=plan)

    def dedup(self, mode=None):
        return self.request("dedup", mode=mode)

    def classify(self, model=None):
        if model is None:
            return self.request("classify")
        return self.request("classify", model=model)
