"""A consistent protocol surface: every command has a client + docs."""


class Server:
    async def _dispatch(self, command, request):
        if command == "ingest":
            return {"ok": True}
        elif command == "stats":
            return {"ok": True}
        elif command == "snapshot":
            return {"ok": True}
        elif command == "vps":
            return {"ok": True}
        elif command == "dedup":
            return {"ok": True}
        elif command == "classify":
            return {"ok": True}
        return {"ok": False, "error": "bad_request"}
