"""Good: broad handlers with a trace, and narrow handlers."""


def translated(work):
    try:
        work()
    except Exception as exc:
        raise RuntimeError("work failed") from exc


def counted(work, metrics):
    try:
        work()
    except Exception:
        metrics.increment("failures")


def logged(work, log):
    try:
        work()
    except Exception as exc:
        log.warning("work failed: %s", exc)


def forwarded(work, future):
    try:
        work()
    except Exception as exc:
        future.set_exception(exc)


def narrow(work):
    try:
        work()
    except ValueError:
        return None
