"""Registers io_wait_seconds as a gauge (see second.py for the clash)."""


def install(registry):
    registry.gauge("io_wait_seconds")
