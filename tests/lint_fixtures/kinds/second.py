"""Registers io_wait_seconds as a histogram: kind clash with first.py."""


def install(registry):
    registry.histogram("io_wait_seconds")  # [bad]
