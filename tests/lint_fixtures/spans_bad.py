"""Bad: spans built without the REPRO_OBS gate."""

from repro.obs.trace import Span, get_tracer


def timed(tracer, work):
    with tracer.span("compare"):  # [bad]
        work()
    with get_tracer().span("compare"):  # [bad]
        work()
    return Span("compare", {}, tracer)  # [bad]
