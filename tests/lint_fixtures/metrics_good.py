"""Good metric registrations, plus non-registry lookalikes."""


def install(registry, name, counters):
    registry.counter("serve_requests_total")
    registry.histogram("serve_latency_seconds")
    registry.histogram("journal_write_bytes")
    registry.histogram("cache_hit_ratio")
    registry.gauge("serve_queue_depth")
    registry.counter(f"serve_{name}_total")
    counters.counter("Not A Metric")  # non-registry receiver: ignored
