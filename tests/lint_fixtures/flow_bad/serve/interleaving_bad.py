"""async-interleaving-race bad fixture.

Every marked line is a shared-state write whose value depends on a
read separated from it by an ``await`` with no single lock statement
covering both ends.
"""

import asyncio

_EPOCH = 0


class Tracker:
    def __init__(self):
        self._seq = 0
        self._cache = {}
        self._lock = asyncio.Lock()

    async def _journal(self, value):
        await asyncio.sleep(0)
        return value

    async def lost_increment(self, payload):
        seq = self._seq
        await self._journal(payload)
        self._seq = seq + 1  # [bad]

    async def same_statement(self):
        self._seq = await self._journal(self._seq)  # [bad]

    async def stale_cache_row(self, key):
        row = self._cache[key]
        await self._journal(key)
        self._cache[key] = row + 1  # [bad]

    async def reacquired_lock(self, payload):
        # Two separate acquisitions of the same lock do NOT cover the
        # read/write pair: the yield point sits between them.
        async with self._lock:
            seq = self._seq
        await self._journal(payload)
        async with self._lock:
            self._seq = seq + 1  # [bad]

    async def bump_epoch(self):
        global _EPOCH
        snapshot = _EPOCH
        await asyncio.sleep(0)
        _EPOCH = snapshot + 1  # [bad]
