"""unmapped-exception-flow bad fixture.

Findings anchor at the originating ``raise``: one escapes through a
module-local helper, one is raised in ``_dispatch`` itself, and one is
caught by a dispatch handler that maps nothing.
"""

ERR_BAD_COMMAND = "ERR bad_command"


class ProtocolError(Exception):
    pass


class Handler:
    def _lookup(self, key):
        if not key:
            raise KeyError(key)  # [bad]
        return key

    def _decode(self, line):
        if line is None:
            raise ProtocolError("empty")
        return line.split()

    async def _dispatch(self, line):
        try:
            command, *args = self._decode(line)
        except ProtocolError:
            return ERR_BAD_COMMAND  # mapped: absorbed
        try:
            if command == "stats":
                raise RuntimeError("not wired up")  # [bad]
        except RuntimeError:
            pass  # a dispatch handler that maps nothing is a hole
        if command == "get":
            return self._lookup(args[0])
        raise ValueError(command)  # [bad]
