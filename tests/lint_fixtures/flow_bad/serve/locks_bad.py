"""lock-discipline bad fixture.

One marked line per violation class: bare acquire/release, a blocking
call while a lock is held (directly and one module-local call deep),
and a lock-order inversion.
"""

import asyncio
import time


def _load_snapshot(path):
    with open(path) as handle:  # blocking, hidden one call deep
        return handle.read()


class Coordinator:
    def __init__(self):
        self._state_lock = asyncio.Lock()
        self._io_lock = asyncio.Lock()

    async def manual_acquire(self):
        await self._state_lock.acquire()  # [bad]
        try:
            return 1
        finally:
            self._state_lock.release()  # [bad]

    async def sleeps_under_lock(self):
        async with self._state_lock:
            time.sleep(0.1)  # [bad]

    async def blocking_helper_under_lock(self, path):
        async with self._io_lock:
            return _load_snapshot(path)  # [bad]

    async def state_then_io(self):
        async with self._state_lock:
            async with self._io_lock:
                return 1

    async def io_then_state(self):
        async with self._io_lock:
            async with self._state_lock:  # [bad]
                return 2
