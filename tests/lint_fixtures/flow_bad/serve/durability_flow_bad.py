"""journal-durability bad fixture for the call-graph upgrade.

A call to a module-local helper that writes without flushing is a
write site in the caller; a conditional commit guarantees nothing.
"""

import os


class Journal:
    def __init__(self, stream, fsync):
        self._stream = stream
        self.fsync = fsync

    def _commit(self):
        self._stream.flush()
        if self.fsync:
            os.fsync(self._stream.fileno())

    def _write_record(self, line):
        # Not flagged here: local callers exist, so the flush
        # obligation lives at the call sites.
        self._stream.write(line + "\n")

    def append_unflushed(self, line):
        self._write_record(line)  # [bad]
        return True

    def append_half_committed(self, lines):
        for line in lines:
            self._stream.write(line + "\n")  # [bad]
        if lines:
            self._commit()  # one branch only: guarantees nothing
