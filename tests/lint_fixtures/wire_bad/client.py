"""Client with an orphaned command no handler answers."""


class Client:
    def request(self, command, **fields):
        return {"cmd": command, **fields}

    def ingest(self, states):
        return self.request("ingest", states=states)

    def orphan(self):
        return self.request("orphan")  # no server handler
