"""Inconsistent protocol: handlers without clients/docs, and vice versa."""


class Server:
    async def _dispatch(self, command, request):
        if command == "ingest":
            return {"ok": True}
        elif command == "snapshot":  # no client method issues this
            return {"ok": True}
        elif command == "mystery":  # no client method AND undocumented
            return {"ok": True}
        elif command == "dedup":  # documented, but no client method
            return {"ok": True}
        return {"ok": False, "error": "bad_request"}
