"""Bad: broad handlers that leave no visible trace."""


def quiet(work):
    try:
        work()
    except Exception:  # [bad]
        pass


def quiet_bare(work):
    try:
        work()
    except:  # [bad]  # noqa: E722
        return None


def quiet_tuple(work):
    result = ""
    try:
        work()
    except (ValueError, Exception) as exc:  # [bad]
        result = str(exc)
    return result
