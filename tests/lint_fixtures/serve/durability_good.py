"""Good: every journal write is flushed (or raises) before returning."""

import os


class Writer:
    def __init__(self, stream, fsync):
        self._stream = stream
        self._fsync = fsync

    def append(self, line):
        self._stream.write(line)
        if self._fsync:
            self._stream.flush()
            os.fsync(self._stream.fileno())
        else:
            self._stream.flush()
        return len(line)

    def append_finally(self, line):
        try:
            self._stream.write(line)
        finally:
            self._stream.flush()

    def append_or_die(self, line, ok):
        if not ok:
            self._stream.write(line)
            raise ValueError("append failed before the ack")
        self._stream.write(line)
        self._stream.flush()
        return True
