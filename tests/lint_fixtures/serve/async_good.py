"""Good: offloaded I/O in coroutines; blocking calls stay in sync defs."""

import asyncio


async def handler(path):
    data = await asyncio.to_thread(path.read_text)
    await asyncio.sleep(0.1)
    return data


def sync_write(path, text):
    path.write_text(text)
    with open(path) as stream:
        return stream.read()


async def nested_escape(path):
    def loader():
        return path.read_text()

    return await asyncio.to_thread(loader)


async def proxy(reader, writer, payload):
    writer.write(payload)
    await writer.drain()
    return await reader.readexactly(4)


def sync_proxy(sock, payload):
    sock.sendall(payload)
    return sock.recv(4096)
