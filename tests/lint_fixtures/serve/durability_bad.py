"""Bad: journal writes that can reach a return without a flush."""


class Writer:
    def __init__(self, stream):
        self._stream = stream

    def append(self, line):
        self._stream.write(line)  # [bad]
        return len(line)

    def append_maybe(self, line, durable):
        self._stream.write(line)  # [bad]
        if durable:
            self._stream.flush()
        return True

    def append_tail(self, line):
        self._stream.write(line)  # [bad]
