"""Bad: blocking I/O called directly inside async defs."""

import os
import time


async def handler(path):
    with open(path) as stream:  # [bad]
        data = stream.read()
    time.sleep(0.1)  # [bad]
    os.replace(path, path + ".bak")  # [bad]
    return data


async def save(path, text):
    path.write_text(text)  # [bad]


async def proxy(sock, payload):
    sock.sendall(payload)  # [bad]
    return sock.recv(4096)  # [bad]


async def resolve(host):
    import socket

    return socket.getaddrinfo(host, 7339)  # [bad]
