"""Suppression fixture: identical findings silenced three ways."""


def trailing(work):
    try:
        work()
    except Exception:  # fenlint: disable=swallowed-exception
        return None


def above(work):
    try:
        work()
    # fenlint: disable=swallowed-exception
    except Exception:
        return None


def wildcard(work):
    try:
        work()
    except Exception:  # fenlint: disable=all
        return None


def unsuppressed(work):
    try:
        work()
    except Exception:  # [bad]
        return None
