"""Bad metric registrations: naming convention violations."""


def install(registry, name):
    registry.counter("serve_requests")  # [bad]
    registry.histogram("serve_latency")  # [bad]
    registry.gauge("serve_depth_total")  # [bad]
    registry.counter("Serve-Requests_total")  # [bad]
    registry.counter(f"serve_{name}_count")  # [bad]
