"""Tests for event explanations, plot-data export, the stable enterprise."""

from __future__ import annotations

import io
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core import Fenrir, VectorSeries, explain_event
from repro.core.vector import StateCatalog
from repro.io.plotdata import (
    export_report,
    write_heatmap_csv,
    write_latency_csv,
    write_sankey_csv,
    write_stackplot_csv,
)

T0 = datetime(2025, 1, 1)


def drained_series(num_networks=10, flip_at=5, length=10):
    networks = [f"n{i}" for i in range(num_networks)]
    series = VectorSeries(networks, StateCatalog())
    for day in range(length):
        site = "LAX" if day < flip_at else "AMS"
        assignment = {n: (site if i < 6 else "NRT") for i, n in enumerate(networks)}
        series.append_mapping(assignment, T0 + timedelta(days=day))
    return series


@pytest.fixture
def report():
    return Fenrir().run(drained_series())


class TestExplainEvent:
    def test_briefing_contents(self, report):
        assert report.events
        explanation = explain_event(report, report.events[0])
        assert explanation.moved_fraction == pytest.approx(0.6)
        source, target, count = explanation.top_movements[0]
        assert (source, target, count) == ("LAX", "AMS", 6.0)
        assert explanation.mode_before != explanation.mode_after
        assert not explanation.known_mode  # AMS mode is new
        assert explanation.recurred_mode is None
        headline = explanation.headline()
        assert "60%" in headline
        assert "NEW routing mode" in headline

    def test_recurrence_flagged(self):
        networks = ["a", "b"]
        series = VectorSeries(networks, StateCatalog())
        pattern = ["X"] * 3 + ["Y"] * 3 + ["X"] * 3
        for day, site in enumerate(pattern):
            series.append_mapping({n: site for n in networks}, T0 + timedelta(days=day))
        report = Fenrir().run(series)
        # The second event returns routing to mode 0.
        explanation = explain_event(report, report.events[-1])
        assert explanation.known_mode
        assert explanation.recurred_mode == 0
        assert "returned to known mode 0" in explanation.headline()

    def test_latency_impact(self, report):
        rtts_before = {f"n{i}": 10.0 for i in range(10)}
        rtts_after = {f"n{i}": (50.0 if i < 6 else 10.0) for i in range(10)}
        explanation = explain_event(
            report, report.events[0], rtts_before, rtts_after
        )
        assert explanation.latency["delta_ms"] > 0
        assert "slower" in explanation.headline()


class TestPlotData:
    def test_heatmap_csv(self, report):
        buffer = io.StringIO()
        rows = write_heatmap_csv(report, buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert rows == 10
        assert len(lines) == 11  # header + rows
        header = lines[0].split(",")
        assert header[0] == "time" and len(header) == 11

    def test_stackplot_csv(self, report):
        buffer = io.StringIO()
        rows = write_stackplot_csv(report, buffer)
        assert rows == 10
        header = buffer.getvalue().splitlines()[0]
        assert "LAX" in header and "AMS" in header

    def test_latency_csv_handles_nan(self):
        times = [T0, T0 + timedelta(days=1)]
        latency = {"LAX": np.array([10.0, np.nan])}
        buffer = io.StringIO()
        write_latency_csv(latency, times, buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert lines[1].endswith("10.000")
        assert lines[2].endswith(",")  # NaN -> empty cell

    def test_sankey_csv(self):
        buffer = io.StringIO()
        count = write_sankey_csv([(0, "USC", "ARN", 5.0)], buffer)
        assert count == 1
        assert "USC,ARN,5.000" in buffer.getvalue()

    def test_export_report(self, report, tmp_path):
        written = export_report(report, tmp_path / "figs")
        assert set(written) == {"heatmap", "stackplot"}
        for path in written.values():
            assert (tmp_path / "figs").samefile(
                __import__("pathlib").Path(path).parent
            )


class TestStableEnterprise:
    def test_second_enterprise_is_quiet(self):
        """The paper's second enterprise: ten months, no changes."""
        from repro.datasets import usc

        study = usc.generate_stable(num_blocks=400, cadence=timedelta(days=15))
        report = Fenrir().run(study.series)
        assert len(report.modes) == 1
        assert report.events == []
        low, high = report.modes.phi_within(0)
        assert low > 0.75  # only measurement noise
