"""``repro.vps``: plan artifact, scorer determinism, selection quality.

The subsystem's contract (docs/vps.md): ``select_vps`` is a greedy
submodular pick over exact-integer agreement counts, so the emitted
``VPPlan`` is *byte-identical* across runs, ``--jobs`` settings, and
kernel tile sizes; the plan's weights repartition the full population
over the kept VPs (they always sum to the total); and detection over
the kept VPs with those weights reproduces full-volume results on
series whose redundancy the selection exploits.
"""

from __future__ import annotations

import json
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.cli import main
from repro.core.detect import detect_events
from repro.core.series import VectorSeries
from repro.core.vector import StateCatalog
from repro.io.formats import write_series_jsonl
from repro.vps import (
    PlanError,
    SelectionConfig,
    VPPlan,
    agreement_counts,
    select_vps,
    series_digest,
)

T0 = datetime(2025, 1, 1)

# Three catchments with populations 6/4/2; inside a catchment every VP
# sees the same site at every round, so one VP per catchment carries
# all the information.
CATCHMENTS = {"a": 6, "b": 4, "c": 2}


def catchment_series(rounds: int = 40, flip_at: int = 20) -> VectorSeries:
    networks = [
        f"{catchment}{index}"
        for catchment, size in CATCHMENTS.items()
        for index in range(size)
    ]
    series = VectorSeries(networks, StateCatalog())
    for step in range(rounds):
        sites = {"a": "LAX", "b": "AMS", "c": "FRA"}
        if step >= flip_at:
            sites["a"] = "NRT"  # the event: catchment a moves
        series.append_mapping(
            {n: sites[n[0]] for n in networks}, T0 + timedelta(hours=step)
        )
    return series


def random_series(seed: int, num_networks: int = 9, rounds: int = 25) -> VectorSeries:
    rng = np.random.default_rng(seed)
    networks = [f"n{i}" for i in range(num_networks)]
    series = VectorSeries(networks, StateCatalog())
    sites = ["LAX", "AMS", "FRA", "unknown", "err"]
    for step in range(rounds):
        series.append_mapping(
            {n: sites[int(rng.integers(0, len(sites)))] for n in networks},
            T0 + timedelta(hours=step),
        )
    return series


class TestPlanArtifact:
    def plan(self) -> VPPlan:
        return VPPlan(
            kept=("a0", "b0", "c0"),
            weights={"a0": 6.0, "b0": 4.0, "c0": 2.0},
            total_networks=12,
            provenance={"series_sha256": "f" * 64},
        )

    def test_round_trip_and_canonical_json(self, tmp_path):
        plan = self.plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = VPPlan.load(path)
        assert loaded == plan
        assert loaded.canonical_json() == plan.canonical_json()
        assert path.read_text() == plan.canonical_json()
        assert plan.budget == 3
        assert plan.volume_fraction == 0.25

    def test_validation(self):
        with pytest.raises(PlanError):
            VPPlan(kept=(), weights={}, total_networks=0, provenance={})
        with pytest.raises(PlanError):  # weight keys must equal kept
            VPPlan(
                kept=("a0",), weights={"b0": 1.0}, total_networks=2, provenance={}
            )
        with pytest.raises(PlanError):  # non-positive weight
            VPPlan(
                kept=("a0",), weights={"a0": 0.0}, total_networks=2, provenance={}
            )
        with pytest.raises(PlanError):  # duplicate kept VP
            VPPlan(
                kept=("a0", "a0"),
                weights={"a0": 2.0},
                total_networks=2,
                provenance={},
            )
        with pytest.raises(PlanError):  # fewer networks than kept VPs
            VPPlan(
                kept=("a0", "b0"),
                weights={"a0": 1.0, "b0": 1.0},
                total_networks=1,
                provenance={},
            )

    def test_from_document_rejects_junk(self):
        good = self.plan().to_document()
        for breakage in (
            {"type": "wrong"},
            {"version": 99},
            {"kept": "a0"},
            {"weights": [1.0]},
            {"total_networks": "twelve"},
        ):
            with pytest.raises(PlanError):
                VPPlan.from_document({**good, **breakage})

    def test_apply_and_weight_alignment(self):
        series = catchment_series()
        plan = self.plan()
        reduced, weights = plan.apply(series)
        assert tuple(reduced.networks) == plan.kept
        assert weights.tolist() == [6.0, 4.0, 2.0]
        with pytest.raises(PlanError):
            plan.weight_array(["a0", "zz"])  # zz not in the plan

    def test_series_digest_tracks_content(self):
        first = catchment_series()
        second = catchment_series()
        assert series_digest(first) == series_digest(second)
        third = catchment_series(flip_at=21)
        assert series_digest(first) != series_digest(third)


class TestAgreementCounts:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_brute_force_and_is_exact(self, seed):
        series = random_series(seed)
        matrix = series.matrix
        counts = agreement_counts(matrix)
        rounds, networks = matrix.shape
        brute = np.zeros((networks, networks))
        for i in range(networks):
            for j in range(networks):
                brute[i, j] = int(np.sum(matrix[:, i] == matrix[:, j]))
        assert np.array_equal(counts, brute)
        # Exact integers: tile size and thread count cannot change them.
        for tile_size, jobs in ((3, 1), (4, 3), (1000, 2)):
            again = agreement_counts(matrix, tile_size=tile_size, jobs=jobs)
            assert np.array_equal(again, counts)


class TestSelection:
    def test_one_vp_per_catchment_with_population_weights(self):
        series = catchment_series()
        plan = select_vps(series, SelectionConfig(budget=3))
        kept_catchments = sorted(vp[0] for vp in plan.kept)
        assert kept_catchments == ["a", "b", "c"]
        # Weights repartition the full population over the kept VPs.
        assert sorted(plan.weights.values()) == [2.0, 4.0, 6.0]
        assert sum(plan.weights.values()) == plan.total_networks

    def test_weights_always_sum_to_total(self):
        for seed in (11, 12, 13):
            series = random_series(seed, num_networks=12, rounds=30)
            plan = select_vps(series, SelectionConfig(fraction=0.4))
            assert sum(plan.weights.values()) == pytest.approx(12.0)
            assert all(weight >= 1.0 for weight in plan.weights.values())

    def test_reduced_detection_matches_full(self):
        series = catchment_series()
        full_events = detect_events(series, threshold=0.02, merge_gap=3)
        plan = select_vps(series, SelectionConfig(budget=3))
        reduced, weights = plan.apply(series)
        reduced_events = detect_events(
            reduced, weights=weights, threshold=0.02, merge_gap=3
        )
        assert [(e.start, e.end) for e in reduced_events] == [
            (e.start, e.end) for e in full_events
        ]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SelectionConfig()  # exactly one of budget/fraction
        with pytest.raises(ValueError):
            SelectionConfig(budget=3, fraction=0.2)
        with pytest.raises(ValueError):
            SelectionConfig(fraction=1.5)
        with pytest.raises(ValueError):
            SelectionConfig(budget=0)
        assert SelectionConfig(fraction=0.2).resolve_budget(450) == 90
        assert SelectionConfig(fraction=0.001).resolve_budget(10) == 1

    def test_budget_larger_than_population_keeps_everything(self):
        series = catchment_series()
        plan = select_vps(series, SelectionConfig(budget=50))
        assert len(plan.kept) == len(series.networks)


class TestDeterminism:
    def test_same_plan_across_runs_and_jobs(self):
        series = random_series(7, num_networks=15, rounds=40)
        baseline = select_vps(series, SelectionConfig(fraction=0.3, jobs=1))
        for jobs, tile_size in ((1, 128), (4, 128), (2, 3), (3, 7)):
            config = SelectionConfig(fraction=0.3, jobs=jobs, tile_size=tile_size)
            assert (
                select_vps(series, config).canonical_json()
                == baseline.canonical_json()
            )

    def test_cli_select_is_byte_deterministic(self, tmp_path, capsys):
        series_path = tmp_path / "series.jsonl"
        with series_path.open("w") as stream:
            write_series_jsonl(catchment_series(), stream)
        outputs = []
        for run, jobs in enumerate(("1", "1", "4")):
            out = tmp_path / f"plan{run}.json"
            assert (
                main(
                    [
                        "vps",
                        "select",
                        str(series_path),
                        "-o",
                        str(out),
                        "--keep",
                        "3",
                        "--jobs",
                        jobs,
                    ]
                )
                == 0
            )
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1] == outputs[2]
        assert "kept 3/12 VPs" in capsys.readouterr().out

    def test_cli_show_and_apply(self, tmp_path, capsys):
        series_path = tmp_path / "series.jsonl"
        with series_path.open("w") as stream:
            write_series_jsonl(catchment_series(), stream)
        plan_path = tmp_path / "plan.json"
        main(["vps", "select", str(series_path), "-o", str(plan_path), "--keep", "3"])
        assert main(["vps", "show", str(plan_path)]) == 0
        out = capsys.readouterr().out
        assert "3/12 VPs" in out

        reduced_path = tmp_path / "reduced.jsonl"
        assert (
            main(
                [
                    "vps",
                    "apply",
                    str(series_path),
                    str(plan_path),
                    str(reduced_path),
                ]
            )
            == 0
        )
        header, first = reduced_path.read_text().splitlines()[:2]
        assert len(json.loads(header)["networks"]) == 3
        assert len(json.loads(first)["states"]) == 3

    def test_analyze_with_vp_plan(self, tmp_path, capsys):
        series_path = tmp_path / "series.jsonl"
        with series_path.open("w") as stream:
            write_series_jsonl(catchment_series(), stream)
        plan_path = tmp_path / "plan.json"
        main(["vps", "select", str(series_path), "-o", str(plan_path), "--keep", "3"])
        capsys.readouterr()
        assert (
            main(["analyze", str(series_path), "--vp-plan", str(plan_path)]) == 0
        )
        assert "modes: 2" in capsys.readouterr().out
