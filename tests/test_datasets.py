"""Scaled-down integration tests of every scenario generator.

Each paper dataset is generated at reduced size and its headline
qualitative property asserted — the full-scale versions live in
``benchmarks/``.
"""

from __future__ import annotations

from collections import Counter
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core import (
    Fenrir,
    detect_events,
    group_entries,
    phi,
    similarity_matrix,
    transition_matrix,
    validate_events,
)
from repro.datasets import broot, google, groot, groundtruth, usc, wikipedia


@pytest.fixture(scope="module")
def groot_study():
    return groot.generate(num_vps=500, coarse_interval=timedelta(hours=6))


@pytest.fixture(scope="module")
def broot_study():
    return broot.generate(num_blocks=800, cadence=timedelta(days=14))


@pytest.fixture(scope="module")
def usc_study():
    return usc.generate(num_blocks=400, cadence=timedelta(days=8))


@pytest.fixture(scope="module")
def wikipedia_study():
    return wikipedia.generate(num_prefixes=600, cadence=timedelta(days=2))


@pytest.fixture(scope="module")
def google_study():
    return google.generate(num_prefixes=500, cadence=timedelta(days=1))


@pytest.fixture(scope="module")
def gt_study():
    return groundtruth.generate(
        num_vps=300,
        days=40,
        num_drains=6,
        num_te=1,
        num_internal=12,
        num_coinciding=3,
        num_standalone=4,
        extra_log_entries=14,
    )


class TestGRoot:
    def test_str_drains_into_nap(self, groot_study):
        aggregates = groot_study.series.aggregate_over_time()
        str_series, nap_series = aggregates["STR"], aggregates["NAP"]
        drained = str_series < 10
        assert drained.any() and (~drained).any()
        # When STR drains, NAP inherits most of its catchment.
        assert nap_series[drained].mean() > nap_series[~drained].mean() * 1.5

    def test_final_mode_has_str_drained(self, groot_study):
        aggregates = groot_study.series.aggregate_over_time()
        assert aggregates["STR"][-1] < 10

    def test_zoom_transition_matrix_shape(self, groot_study):
        series = groot_study.zoom
        best = None
        for index in range(len(series) - 1):
            tm = transition_matrix(series[index], series[index + 1])
            flow = tm.count("STR", "NAP") + tm.count("STR", "err")
            if best is None or flow > best[0]:
                best = (flow, tm)
        assert best is not None and best[0] > 50  # the big drain step
        tm = best[1]
        assert tm.count("STR", "NAP") > tm.count("NAP", "STR")

    def test_hnl_is_micro_catchment(self, groot_study):
        aggregates = groot_study.series.aggregate_over_time()
        assert aggregates["HNL"].max() < 0.05 * len(groot_study.series.networks)


class TestBRoot:
    def test_about_half_unknown(self, broot_study):
        fraction = broot_study.series[0].fraction_unknown()
        assert 0.3 < fraction < 0.6

    def test_six_paperish_modes(self, broot_study):
        report = Fenrir().run(broot_study.series)
        assert 4 <= len(report.modes) <= 8

    def test_mode_v_resembles_mode_i(self, broot_study):
        report = Fenrir().run(broot_study.series)
        modes = report.modes
        # The mode covering early 2024 (TE withdrawn) resembles the
        # first mode more than it resembles its immediate predecessor.
        v_index = broot_study.series.index_at(datetime(2024, 2, 1))
        v_mode = modes.mode_at(v_index).mode_id
        prior = modes.closest_prior_mode(v_mode)
        assert prior is not None
        assert prior[0] == 0

    def test_ari_vanishes_after_shutdown(self, broot_study):
        before = broot_study.true_assignment(datetime(2022, 1, 1))
        after = broot_study.true_assignment(datetime(2023, 4, 1))
        assert "ARI" in set(before.values())
        assert "ARI" not in set(after.values())

    def test_collection_outage_gap(self, broot_study):
        for when in broot_study.sample_times:
            assert not (broot.OUTAGE_START <= when < broot.OUTAGE_END)

    def test_scl_low_latency_after_resume(self, broot_study):
        from repro.latency.model import RttModel

        model = RttModel(jitter_ms=0)
        assignment = broot_study.true_assignment(datetime(2024, 1, 1))
        rtts = model.table(
            assignment, broot_study.block_locations, broot_study.site_locations
        )
        scl_rtts = [
            rtts[n] for n, site in assignment.items() if site == "SCL" and n in rtts
        ]
        assert scl_rtts and float(np.median(scl_rtts)) < 120


class TestUsc:
    def test_two_modes_split_at_reconfiguration(self, usc_study):
        report = Fenrir().run(usc_study.series)
        assert len(report.modes) == 2
        timeline = report.modes.timeline()
        assert timeline[1][1] >= usc.RECONFIGURATION_DATE - timedelta(days=8)
        low, high = report.modes.phi_between(0, 1)
        assert high <= 0.35  # "at most 90% changed": huge shift

    def test_arn_a_dominates_before(self, usc_study):
        index = usc_study.series.index_at(datetime(2024, 10, 1))
        counts = Counter(usc_study.series[index].to_mapping().values())
        assert counts["ARN-A"] > 0.5 * len(usc_study.series.networks)

    def test_ntt_he_take_over_after(self, usc_study):
        index = usc_study.series.index_at(datetime(2025, 3, 1))
        counts = Counter(usc_study.series[index].to_mapping().values())
        assert counts["ARN-A"] < 30
        assert counts["NTT"] + counts["HE"] > 0.5 * len(usc_study.series.networks)

    def test_ann_vanishes_after(self, usc_study):
        index = usc_study.series.index_at(datetime(2025, 3, 1))
        counts = Counter(usc_study.series[index].to_mapping().values())
        assert counts["ANN"] < 10


class TestWikipedia:
    def test_three_modes(self, wikipedia_study):
        report = Fenrir().run(wikipedia_study.series)
        assert len(report.modes) == 3

    def test_codfw_drain_window(self, wikipedia_study):
        aggregates = wikipedia_study.series.aggregate_over_time()
        codfw = aggregates["codfw"]
        times = wikipedia_study.series.times
        during = [
            value
            for when, value in zip(times, codfw)
            if wikipedia.DRAIN_START <= when < wikipedia.DRAIN_END
        ]
        before = codfw[0]
        assert before > 50
        assert max(during, default=0) == 0

    def test_partial_return(self, wikipedia_study):
        aggregates = wikipedia_study.series.aggregate_over_time()
        codfw = aggregates["codfw"]
        after = codfw[-1]
        before = codfw[0]
        assert 0.15 * before < after < 0.55 * before  # ~30% return

    def test_drained_clients_split_eqiad_ulsfo(self, wikipedia_study):
        series = wikipedia_study.series
        pre = series.index_at(wikipedia.DRAIN_START - timedelta(days=1))
        during = series.index_at(wikipedia.DRAIN_START + timedelta(days=1))
        tm = transition_matrix(series[pre], series[during])
        departures = tm.departures_from("codfw")
        departures.pop("unknown", None)
        top = sorted(departures, key=departures.get, reverse=True)[:2]
        assert set(top) == {"eqiad", "ulsfo"}
        assert departures["eqiad"] > departures["ulsfo"]


class TestGoogle:
    def test_within_week_phi(self, google_study):
        sim = similarity_matrix(google_study.series)
        value = sim[20, 21]  # adjacent days inside the 2024 era
        assert 0.70 < value < 0.90

    def test_cross_week_phi(self, google_study):
        sim = similarity_matrix(google_study.series)
        value = sim[10, 24]
        assert 0.10 < value < 0.40

    def test_eras_share_nothing(self, google_study):
        sim = similarity_matrix(google_study.series)
        assert sim[0, 30] == pytest.approx(0.0, abs=0.01)
        assert sim[0, 1] > 0.5  # but 2013 era is self-similar day to day


class TestGroundTruth:
    def test_table4_confusion_matrix(self, gt_study):
        events = detect_events(gt_study.series, threshold=0.02, merge_gap=3)
        groups = group_entries(gt_study.log)
        report = validate_events(events, groups)
        assert report.recall == 1.0
        assert report.false_negative == 0
        assert report.true_positive == 7
        assert report.true_negative == 9
        assert report.false_positive == 3
        assert report.unmatched_detections == 4
        assert report.precision == pytest.approx(0.70, abs=0.05)
        assert report.accuracy == pytest.approx(0.84, abs=0.05)

    def test_log_grouping_counts(self, gt_study):
        groups = group_entries(gt_study.log)
        assert len(gt_study.log) == 33  # 19 seeds + 14 follow-ups
        assert len(groups) == 19
        assert sum(1 for g in groups if g.external) == 7

    def test_internal_events_have_no_routing_effect(self, gt_study):
        # Measure right before and right after an internal-only window
        # that has no coinciding third-party change.
        internal_only = [
            g
            for g in group_entries(gt_study.log)
            if not g.external
            and not any(
                abs((t - g.start).total_seconds()) < 1800
                for t in gt_study.third_party_times
            )
        ]
        assert internal_only
        group = internal_only[0]
        series = gt_study.series
        before = series.index_at(group.start - timedelta(minutes=15))
        after = min(before + 3, len(series) - 1)
        assert phi(series[before], series[after]) > 0.97


class TestBaltic:
    @pytest.fixture(scope="class")
    def baltic_study(self):
        from repro.datasets import baltic

        return baltic.generate(num_vantages=150, cadence=timedelta(days=2))

    def test_cable_cut_detected(self, baltic_study):
        report = Fenrir().run(baltic_study.series)
        assert len(report.modes) == 2
        assert len(report.events) == 1
        from repro.datasets import baltic

        assert report.events[0].end >= baltic.CABLE_CUT - timedelta(days=2)

    def test_diversity_collapses(self, baltic_study):
        from repro.controlplane.country import country_crossings, transit_diversity
        from repro.datasets import baltic

        before = country_crossings(
            baltic_study.collector.paths_at(baltic.CABLE_CUT - timedelta(days=3)),
            baltic_study.country_ases,
        )
        after = country_crossings(
            baltic_study.collector.paths_at(baltic.CABLE_CUT + timedelta(days=3)),
            baltic_study.country_ases,
        )
        assert transit_diversity(before) > 1.2
        assert transit_diversity(after) == 1.0
        assert all(c.outside_asn == baltic.CABLE_EAST for c in after)

    def test_country_stays_reachable(self, baltic_study):
        # The point of multihoming: the cut degrades, never partitions.
        from repro.datasets import baltic

        paths = baltic_study.collector.paths_at(baltic.CABLE_CUT + timedelta(days=3))
        assert len(paths) == len(baltic_study.collector.vantages)

    def test_detour_costs_latency(self, baltic_study):
        from repro.datasets import baltic
        from repro.latency.model import path_rtt_ms

        before_paths = baltic_study.collector.paths_at(
            baltic.CABLE_CUT - timedelta(days=3)
        )
        after_paths = baltic_study.collector.paths_at(
            baltic.CABLE_CUT + timedelta(days=3)
        )
        moved = [
            asn
            for asn, path in before_paths.items()
            if baltic.CABLE_WEST in path
        ]
        assert moved
        deltas = [
            path_rtt_ms(baltic_study.topology, after_paths[asn])
            - path_rtt_ms(baltic_study.topology, before_paths[asn])
            for asn in moved
        ]
        assert np.median(deltas) > 0
