"""Tests for the command-line interface."""

from __future__ import annotations

from datetime import datetime, timedelta

import pytest

from repro.cli import build_parser, main
from repro.core.series import VectorSeries
from repro.core.vector import StateCatalog
from repro.io.formats import write_series_jsonl


@pytest.fixture
def series_file(tmp_path):
    series = VectorSeries(["n1", "n2"], StateCatalog())
    t0 = datetime(2025, 1, 1)
    for day in range(10):
        state = "LAX" if day < 5 else "AMS"
        series.append_mapping({"n1": state, "n2": "LAX"}, t0 + timedelta(days=day))
    path = tmp_path / "series.jsonl"
    with path.open("w") as stream:
        write_series_jsonl(series, stream)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "nope"])


class TestAnalyze:
    def test_analyze_jsonl(self, series_file, capsys):
        assert main(["analyze", str(series_file)]) == 0
        out = capsys.readouterr().out
        assert "modes: 2" in out
        assert "mode (i)" in out

    def test_analyze_flags(self, series_file, capsys):
        main(
            [
                "analyze",
                str(series_file),
                "--heatmap",
                "--stackplot",
                "--events",
                "--policy",
                "exclude",
                "--linkage",
                "complete",
            ]
        )
        out = capsys.readouterr().out
        assert "scale:" in out  # heatmap legend
        assert "events:" in out

    def test_analyze_unknown_extension(self, tmp_path):
        bogus = tmp_path / "series.xml"
        bogus.write_text("<nope/>")
        with pytest.raises(SystemExit):
            main(["analyze", str(bogus)])


class TestConvert:
    def test_jsonl_to_csv_round_trip(self, series_file, tmp_path, capsys):
        csv_path = tmp_path / "series.csv"
        main(["convert", str(series_file), str(csv_path)])
        assert csv_path.exists()
        back = tmp_path / "back.jsonl"
        main(["convert", str(csv_path), str(back)])
        assert back.read_text().count("\n") == series_file.read_text().count("\n")


class TestExportExplain:
    def test_export_writes_csvs(self, series_file, tmp_path, capsys):
        out_dir = tmp_path / "figs"
        assert main(["export", str(series_file), str(out_dir)]) == 0
        assert (out_dir / "heatmap.csv").exists()
        assert (out_dir / "stackplot.csv").exists()
        out = capsys.readouterr().out
        assert "heatmap:" in out

    def test_export_svg_flag(self, series_file, tmp_path, capsys):
        out_dir = tmp_path / "figs"
        main(["export", str(series_file), str(out_dir), "--svg"])
        assert (out_dir / "heatmap.svg").exists()
        assert (out_dir / "stackplot.svg").exists()

    def test_explain_prints_headlines(self, series_file, capsys):
        main(["explain", str(series_file)])
        out = capsys.readouterr().out
        assert "changed catchment" in out

    def test_explain_quiet_series(self, tmp_path, capsys):
        series = VectorSeries(["n1"], StateCatalog())
        t0 = datetime(2025, 1, 1)
        for day in range(4):
            series.append_mapping({"n1": "LAX"}, t0 + timedelta(days=day))
        path = tmp_path / "quiet.jsonl"
        with path.open("w") as stream:
            write_series_jsonl(series, stream)
        main(["explain", str(path)])
        assert "no events" in capsys.readouterr().out


class TestOnlineCommand:
    def test_online_replay(self, series_file, capsys):
        main(["online", str(series_file), "--event-threshold", "0.2"])
        out = capsys.readouterr().out
        assert "new mode" in out
        assert "done:" in out
        assert "2 modes" in out


class TestBundleCommand:
    def test_bundle_demo(self, tmp_path, capsys):
        main(["bundle", "usc", str(tmp_path / "release")])
        out = capsys.readouterr().out
        assert "bundle written" in out
        from repro.io.bundle import read_bundle

        bundle = read_bundle(tmp_path / "release")
        assert bundle.name == "usc"
        assert bundle.observations > 0


class TestCatalog:
    def test_catalog_lists_datasets(self, capsys):
        main(["catalog"])
        out = capsys.readouterr().out
        assert "B-Root/Verfploeter" in out
        assert "USC/traceroute" in out
        assert "repro.datasets" in out


class TestServeCommands:
    def test_serve_parser_accepts_options(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--data-dir", "/tmp/x",
                "--port", "0",
                "--queue-size", "8",
                "--snapshot-every", "50",
                "--fsync",
            ]
        )
        assert args.command == "serve"
        assert args.queue_size == 8 and args.fsync

    def test_serve_requires_data_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_client_subcommands_parse(self):
        parser = build_parser()
        create = parser.parse_args(
            ["client", "create", "svc", "--networks", "a,b,c"]
        )
        assert create.client_command == "create"
        ingest = parser.parse_args(
            ["client", "ingest", "svc", "series.jsonl", "--create"]
        )
        assert ingest.client_command == "ingest" and ingest.create
        for name in ("stats", "list"):
            assert build_parser().parse_args(["client", name]).client_command == name

    def test_client_end_to_end_against_live_server(self, series_file, tmp_path, capsys):
        """`repro client ingest/timeline/stats` against a real server."""
        import asyncio
        import threading

        from repro.serve import FenrirServer, ServeConfig

        ready = threading.Event()
        holder = {}

        def run() -> None:
            async def main_coroutine() -> None:
                server = FenrirServer(
                    ServeConfig(data_dir=tmp_path / "data", port=0)
                )
                await server.start()
                holder["address"] = server.address
                holder["loop"] = asyncio.get_running_loop()
                holder["stop"] = asyncio.Event()
                ready.set()
                await holder["stop"].wait()
                await server.stop()

            asyncio.run(main_coroutine())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=10)
        host, port = holder["address"]
        base = ["client", "--host", host, "--port", str(port)]
        try:
            assert main([*base, "ingest", "svc", str(series_file), "--create"]) == 0
            out = capsys.readouterr().out
            assert "ingested 10 rounds" in out

            assert main([*base, "timeline", "svc"]) == 0
            out = capsys.readouterr().out
            assert "mode   0" in out and "mode   1" in out

            assert main([*base, "stats"]) == 0
            out = capsys.readouterr().out
            assert '"rounds_ingested": 10' in out

            assert main([*base, "snapshot", "svc"]) == 0
            assert "seq 10" in capsys.readouterr().out

            assert main([*base, "list"]) == 0
            assert "svc" in capsys.readouterr().out

            assert main([*base, "query", "svc"]) == 0
            assert '"modes": 2' in capsys.readouterr().out
        finally:
            holder["loop"].call_soon_threadsafe(holder["stop"].set)
            thread.join(timeout=10)
