"""Tests for the mode-timeline SVG and MAnycast-style detection."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from datetime import datetime, timedelta

import pytest

from repro.anycast.manycast import detect_anycast
from repro.bgp.events import RoutingScenario, SiteDrain
from repro.bgp.policy import Announcement
from repro.core import Fenrir
from repro.core.series import VectorSeries
from repro.core.vector import StateCatalog
from repro.viz_svg import timeline_svg

T0 = datetime(2025, 1, 1)


@pytest.fixture
def report():
    series = VectorSeries(["a", "b"], StateCatalog())
    pattern = ["X"] * 4 + ["Y"] * 4 + ["X"] * 4
    for day, site in enumerate(pattern):
        series.append_mapping({"a": site, "b": site}, T0 + timedelta(days=day))
    return Fenrir().run(series)


class TestTimelineSvg:
    def test_segments_rendered(self, report):
        svg = timeline_svg(report.modes, report.events)
        root = ET.fromstring(svg.to_string())
        ns = "{http://www.w3.org/2000/svg}"
        rects = root.findall(f".//{ns}rect") + root.findall(".//rect")
        assert len(rects) == 3  # three contiguous segments
        lines = root.findall(f".//{ns}line") + root.findall(".//line")
        assert len(lines) == len(report.events)

    def test_recurring_mode_shares_color(self, report):
        text = timeline_svg(report.modes).to_string()
        # Mode 0 appears twice; its palette color occurs in 2 rects.
        from repro.viz_svg import PALETTE

        assert text.count(PALETTE[0]) == 2
        assert text.count(PALETTE[1]) == 1

    def test_roman_labels(self, report):
        text = timeline_svg(report.modes).to_string()
        assert "(i)" in text and "(ii)" in text

    def test_needs_two_observations(self):
        series = VectorSeries(["a"], StateCatalog())
        series.append_mapping({"a": "X"}, T0)
        from repro.core.modes import ModeSet

        import numpy as np

        modeset = ModeSet(series, np.array([0]), np.eye(1), 0.0)
        with pytest.raises(ValueError):
            timeline_svg(modeset)


class TestManycast:
    @pytest.fixture
    def anycast_scenario(self, small_topology):
        return RoutingScenario(
            small_topology,
            [Announcement(origin=21, label="A"), Announcement(origin=23, label="B")],
        )

    @pytest.fixture
    def unicast_scenario(self, small_topology):
        return RoutingScenario(small_topology, [Announcement(origin=21, label="A")])

    def test_anycast_detected(self, anycast_scenario, t0):
        verdict = detect_anycast(anycast_scenario, [11, 12, 13, 22], t0)
        assert verdict.is_anycast
        assert set(verdict.observed_sites) == {"A", "B"}
        assert verdict.site_count == 2

    def test_unicast_not_flagged(self, unicast_scenario, t0):
        verdict = detect_anycast(unicast_scenario, [11, 12, 13, 22], t0)
        assert not verdict.is_anycast
        assert verdict.observed_sites == ("A",)

    def test_vantage_placement_matters(self, anycast_scenario, t0):
        # All vantages inside one catchment cannot see the anycast.
        verdict = detect_anycast(anycast_scenario, [11, 21], t0)
        assert not verdict.is_anycast

    def test_drained_anycast_looks_unicast(self, anycast_scenario, t0):
        anycast_scenario.add_event(
            SiteDrain("A", t0 + timedelta(days=1), t0 + timedelta(days=2))
        )
        verdict = detect_anycast(
            anycast_scenario, [11, 12, 13, 22], t0 + timedelta(days=1)
        )
        assert not verdict.is_anycast

    def test_unreachable_vantages_counted(self, unicast_scenario, t0, small_topology):
        small_topology.remove_link(13, 23)
        small_topology.remove_link(2, 13)
        verdict = detect_anycast(unicast_scenario, [13, 11], t0)
        assert verdict.unreachable_vantages == 1

    def test_empty_vantages_rejected(self, unicast_scenario, t0):
        with pytest.raises(ValueError):
            detect_anycast(unicast_scenario, [], t0)

    def test_broot_prefix_detected_as_anycast(self):
        """Integration: the B-Root scenario's prefix is anycast."""
        import random
        from datetime import timedelta as td

        from repro.datasets import broot

        study = broot.generate(num_blocks=600, cadence=td(days=120))
        rng = random.Random(5)
        vantages = rng.sample(sorted(study.topology.nodes), 60)
        verdict = detect_anycast(
            study.service.scenario, vantages, datetime(2022, 6, 1)
        )
        assert verdict.is_anycast
        assert verdict.site_count >= 3
