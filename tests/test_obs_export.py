"""Prometheus text exposition: golden file, escaping, file dumps.

The golden file in ``tests/golden/metrics.prom`` pins the exact bytes
:func:`render_prometheus` emits for a representative registry —
counters with and without labels, a gauge, a callback gauge, and a
histogram with its cumulative ``_bucket``/``_sum``/``_count`` series.
Any formatting drift (ordering, float rendering, header placement)
shows up as a readable diff against that file.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs import (
    CONTENT_TYPE,
    MetricsRegistry,
    render_prometheus,
    write_metrics_file,
)

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"


def build_reference_registry() -> MetricsRegistry:
    """A registry exercising every sample shape the renderer emits."""
    registry = MetricsRegistry()
    registry.counter(
        "serve_rounds_ingested_total", help="Rounds accepted by the server"
    ).inc(42)
    registry.counter("pipeline_runs_total").inc(3)
    errors = registry.counter(
        "serve_errors_total", labels={"command": "ingest"}, help="Errors by command"
    )
    errors.inc(2)
    registry.counter("serve_errors_total", labels={"command": "query"}).inc()
    depth = registry.gauge(
        "serve_queue_depth", labels={"monitor": "svc1"}, help="Pending records"
    )
    depth.set(7)
    uptime = registry.gauge("serve_uptime_seconds", help="Seconds since start")
    uptime.set_function(lambda: 12.5)
    fsync = registry.histogram(
        "serve_journal_fsync_seconds",
        buckets=(0.001, 0.01, 0.1),
        help="Journal flush+fsync latency",
    )
    for value in (0.0005, 0.002, 0.002, 0.05, 2.0):
        fsync.observe(value)
    return registry


class TestGoldenFile:
    def test_matches_committed_golden(self):
        rendered = render_prometheus(build_reference_registry())
        assert rendered == GOLDEN.read_text(encoding="utf-8")

    def test_deterministic_across_insertion_order(self):
        # Same series registered in a different order render identically.
        registry = MetricsRegistry()
        registry.counter("serve_errors_total", labels={"command": "query"}).inc()
        registry.gauge("serve_uptime_seconds", help="Seconds since start").set_function(
            lambda: 12.5
        )
        fsync = registry.histogram(
            "serve_journal_fsync_seconds",
            buckets=(0.001, 0.01, 0.1),
            help="Journal flush+fsync latency",
        )
        for value in (0.0005, 0.002, 0.002, 0.05, 2.0):
            fsync.observe(value)
        registry.counter("pipeline_runs_total").inc(3)
        registry.gauge(
            "serve_queue_depth", labels={"monitor": "svc1"}, help="Pending records"
        ).set(7)
        registry.counter(
            "serve_errors_total", labels={"command": "ingest"}, help="Errors by command"
        ).inc(2)
        registry.counter(
            "serve_rounds_ingested_total", help="Rounds accepted by the server"
        ).inc(42)
        assert render_prometheus(registry) == GOLDEN.read_text(encoding="utf-8")


class TestFormatDetails:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_content_type_pins_text_format(self):
        assert "version=0.0.4" in CONTENT_TYPE

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "x_total", labels={"path": 'a"b\\c\nd'}
        ).inc()
        rendered = render_prometheus(registry)
        assert 'path="a\\"b\\\\c\\nd"' in rendered

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            histogram.observe(value)
        rendered = render_prometheus(registry)
        assert 'h_seconds_bucket{le="1"} 1' in rendered
        assert 'h_seconds_bucket{le="2"} 2' in rendered
        assert 'h_seconds_bucket{le="+Inf"} 3' in rendered
        assert "h_seconds_count 3" in rendered

    def test_nan_gauge_renders_nan(self):
        registry = MetricsRegistry()

        def boom() -> float:
            raise RuntimeError("torn down")

        registry.gauge("g").set_function(boom)
        assert "g NaN" in render_prometheus(registry)

    def test_help_emitted_once_per_family(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels={"k": "a"}, help="things").inc()
        registry.counter("x_total", labels={"k": "b"}).inc()
        rendered = render_prometheus(registry)
        assert rendered.count("# HELP x_total things") == 1
        assert rendered.count("# TYPE x_total counter") == 1


class TestMetricsFile:
    def test_write_creates_parents_and_content(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x_total").inc(5)
        target = tmp_path / "deep" / "nested" / "metrics.prom"
        written = write_metrics_file(target, registry)
        assert written == target
        assert target.read_text(encoding="utf-8") == "# TYPE x_total counter\nx_total 5\n"

    def test_write_replaces_atomically(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        target = tmp_path / "metrics.prom"
        counter.inc()
        write_metrics_file(target, registry)
        counter.inc()
        write_metrics_file(target, registry)
        assert "x_total 2" in target.read_text(encoding="utf-8")
        assert not target.with_name(target.name + ".tmp").exists()

    def test_default_registry_used_when_none(self, tmp_path):
        from repro.obs import get_registry, set_registry

        fresh = MetricsRegistry()
        previous = get_registry()
        set_registry(fresh)
        try:
            fresh.counter("only_here_total").inc()
            target = write_metrics_file(tmp_path / "m.prom")
        finally:
            set_registry(previous)
        assert "only_here_total 1" in target.read_text(encoding="utf-8")


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    # Regenerate the golden file after an intentional format change:
    #   PYTHONPATH=src python tests/test_obs_export.py
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(render_prometheus(build_reference_registry()), encoding="utf-8")
    print(f"wrote {GOLDEN}")
