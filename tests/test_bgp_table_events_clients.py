"""Tests for RIB tables, scripted events/scenarios and client space."""

from __future__ import annotations

import io
import random
from datetime import timedelta

import pytest

from repro.bgp.clients import allocate_clients, zipf_block_counts
from repro.bgp.events import (
    InternalMaintenance,
    LinkAdd,
    LinkOutage,
    LinkRemove,
    RoutingScenario,
    ScopeChange,
    SiteAdd,
    SiteDrain,
    SiteMove,
    SiteRemove,
    TrafficEngineering,
)
from repro.bgp.policy import Announcement, Scope
from repro.bgp.table import RibEntry, RoutingTable, dump_table, parse_table, routable_blocks
from repro.net.addr import parse_address, parse_prefix


class TestRibTable:
    def test_line_round_trip(self):
        entry = RibEntry(parse_prefix("198.51.100.0/24"), (7018, 3356, 64512), 1700000000)
        assert RibEntry.from_line(entry.to_line()) == entry

    def test_from_line_rejects_garbage(self):
        with pytest.raises(ValueError):
            RibEntry.from_line("BGP4MP|x|y")
        with pytest.raises(ValueError):
            RibEntry.from_line("TABLE_DUMP2|0|B|10.0.0.0/8||IGP")

    def test_origin_as_is_last(self):
        entry = RibEntry(parse_prefix("10.0.0.0/8"), (1, 2, 3))
        assert entry.origin_as == 3

    def test_table_lookup_longest_match(self):
        table = RoutingTable(
            [
                RibEntry(parse_prefix("10.0.0.0/8"), (1, 100)),
                RibEntry(parse_prefix("10.1.0.0/16"), (1, 200)),
            ]
        )
        assert table.lookup(int(parse_address("10.1.2.3"))).origin_as == 200
        assert table.lookup(int(parse_address("10.2.0.1"))).origin_as == 100
        assert table.lookup(int(parse_address("11.0.0.1"))) is None

    def test_origin_of_prefix(self):
        table = RoutingTable([RibEntry(parse_prefix("10.0.0.0/8"), (1, 100))])
        assert table.origin_of(parse_prefix("10.5.0.0/24")) == 100
        assert table.origin_of(parse_prefix("11.0.0.0/24")) is None

    def test_dump_and_parse_round_trip(self):
        table = RoutingTable(
            [
                RibEntry(parse_prefix("10.0.0.0/8"), (1, 2), 5),
                RibEntry(parse_prefix("192.0.2.0/24"), (3,), 9),
            ]
        )
        buffer = io.StringIO()
        assert dump_table(table, buffer) == 2
        buffer.seek(0)
        parsed = parse_table(buffer)
        assert [e.prefix for e in parsed] == [e.prefix for e in table]

    def test_parse_skips_comments_and_blanks(self):
        text = "# comment\n\n" + RibEntry(parse_prefix("10.0.0.0/24"), (1,)).to_line() + "\n"
        parsed = parse_table(io.StringIO(text))
        assert len(parsed) == 1

    def test_routable_blocks_deduplicates(self):
        table = RoutingTable(
            [
                RibEntry(parse_prefix("10.0.0.0/23"), (1,)),
                RibEntry(parse_prefix("10.0.1.0/24"), (2,)),
            ]
        )
        blocks = routable_blocks(table)
        assert [str(b) for b in blocks] == ["10.0.0.0/24", "10.0.1.0/24"]


class TestScenario:
    @pytest.fixture
    def scenario(self, small_topology, t0):
        return RoutingScenario(
            small_topology,
            [Announcement(origin=21, label="A"), Announcement(origin=23, label="B")],
        )

    def test_no_events_is_stable(self, scenario, t0):
        first = scenario.outcome_at(t0)
        second = scenario.outcome_at(t0 + timedelta(days=100))
        assert first is second  # cached: identical configuration

    def test_site_drain_window(self, scenario, t0):
        scenario.add_event(SiteDrain("A", t0 + timedelta(days=1), t0 + timedelta(days=2)))
        assert "A" in scenario.active_sites_at(t0)
        assert "A" not in scenario.active_sites_at(t0 + timedelta(days=1))
        assert "A" in scenario.active_sites_at(t0 + timedelta(days=2))

    def test_drain_shifts_catchment(self, scenario, t0):
        scenario.add_event(SiteDrain("A", t0 + timedelta(days=1), t0 + timedelta(days=2)))
        during = scenario.outcome_at(t0 + timedelta(days=1))
        assert during.label_of(11) == "B"

    def test_site_add_and_remove(self, scenario, t0, small_topology):
        scenario.add_event(SiteAdd(Announcement(origin=22, label="C"), t0 + timedelta(days=5)))
        scenario.add_event(SiteRemove("B", t0 + timedelta(days=7)))
        assert scenario.active_sites_at(t0 + timedelta(days=4)) == ["A", "B"]
        assert scenario.active_sites_at(t0 + timedelta(days=5)) == ["A", "B", "C"]
        assert scenario.active_sites_at(t0 + timedelta(days=7)) == ["A", "C"]

    def test_site_move(self, scenario, t0):
        scenario.add_event(SiteMove("A", 22, t0 + timedelta(days=3)))
        outcome = scenario.outcome_at(t0 + timedelta(days=3))
        assert outcome[22].kind.name == "ORIGIN"
        assert outcome.label_of(22) == "A"

    def test_traffic_engineering_window(self, scenario, t0):
        scenario.add_event(TrafficEngineering("A", 11, 5, t0 + timedelta(days=1), t0 + timedelta(days=2)))
        _topo, anns, _down = scenario.configuration_at(t0 + timedelta(days=1))
        assert {a.label: a.prepend for a in anns}["A"] == {11: 5}
        _topo, anns, _down = scenario.configuration_at(t0)
        assert {a.label: a.prepend for a in anns}["A"] == {}

    def test_scope_change_window(self, scenario, t0):
        scenario.add_event(
            ScopeChange("A", Scope.CUSTOMER_CONE, t0 + timedelta(days=1), t0 + timedelta(days=2))
        )
        during = scenario.outcome_at(t0 + timedelta(days=1))
        assert during.label_of(2) == "B"  # A no longer visible at T2

    def test_link_outage_window(self, scenario, t0):
        scenario.add_event(LinkOutage(11, 21, t0 + timedelta(days=1), t0 + timedelta(days=2)))
        during = scenario.outcome_at(t0 + timedelta(days=1))
        assert during.label_of(21) == "A"  # origin still itself
        assert during.label_of(11) == "B"

    def test_permanent_link_changes(self, scenario, t0, small_topology):
        scenario.add_event(LinkRemove(11, 21, t0 + timedelta(days=1)))
        assert scenario.outcome_at(t0 + timedelta(days=9)).label_of(11) == "B"
        # Base topology is untouched.
        assert small_topology.relationship(11, 21) is not None

    def test_link_add_peer(self, scenario, t0):
        scenario.add_event(LinkAdd(21, 23, t0, peer=True))
        topo, _anns, _down = scenario.configuration_at(t0)
        assert 23 in topo.peers_of(21)

    def test_internal_maintenance_has_no_effect(self, scenario, t0):
        before = scenario.outcome_at(t0)
        scenario.add_event(
            InternalMaintenance("A", t0 + timedelta(days=1), t0 + timedelta(days=1, hours=1))
        )
        during = scenario.outcome_at(t0 + timedelta(days=1))
        assert {a: r.label for a, r in before.routes.items()} == {
            a: r.label for a, r in during.routes.items()
        }

    def test_active_events_signature(self, scenario, t0):
        scenario.add_event(SiteDrain("A", t0 + timedelta(days=1), t0 + timedelta(days=2)))
        scenario.add_event(LinkRemove(11, 21, t0 + timedelta(days=5)))
        assert scenario.active_events_at(t0) == ()
        assert scenario.active_events_at(t0 + timedelta(days=1)) == (0,)
        assert scenario.active_events_at(t0 + timedelta(days=6)) == (1,)

    def test_cache_invalidation_on_add(self, scenario, t0):
        first = scenario.outcome_at(t0)
        scenario.add_event(SiteRemove("A", t0 - timedelta(days=1)))
        second = scenario.outcome_at(t0)
        assert second.get(21) is not None
        assert second.label_of(11) == "B"
        assert first is not second


class TestClientSpace:
    def test_allocation_contiguous(self):
        clients = allocate_clients([10, 20], [2, 3])
        assert len(clients) == 5
        assert clients.as_of(clients.blocks[0]) == 10
        assert clients.as_of(clients.blocks[2]) == 20
        assert clients.blocks_of(20) == clients.blocks[2:]

    def test_allocation_mismatched_lengths(self):
        with pytest.raises(ValueError):
            allocate_clients([1], [1, 2])

    def test_allocation_overflow(self):
        base = parse_prefix("10.0.0.0/22")  # only 4 /24s
        with pytest.raises(ValueError):
            allocate_clients([1], [5], base=base)

    def test_as_of_address(self):
        clients = allocate_clients([10], [2])
        block = clients.blocks[1]
        assert clients.as_of_address(block.first_address + 7) == 10
        assert clients.as_of_address(parse_address("9.0.0.0")) is None

    def test_network_ids_are_prefix_strings(self):
        clients = allocate_clients([10], [1])
        assert clients.network_ids() == [str(clients.blocks[0])]

    def test_zipf_counts_sum_and_minimum(self):
        rng = random.Random(5)
        counts = zipf_block_counts(rng, 20, 500)
        assert sum(counts) == 500
        assert min(counts) >= 1
        assert max(counts) > 500 // 20  # skewed, not uniform

    def test_zipf_rejects_impossible(self):
        with pytest.raises(ValueError):
            zipf_block_counts(random.Random(1), 10, 5)
        with pytest.raises(ValueError):
            zipf_block_counts(random.Random(1), 0, 5)

    def test_routing_table_covers_blocks(self, small_topology):
        clients = allocate_clients([21, 22], [2, 2])
        table = clients.routing_table(small_topology)
        assert len(table) == 4
        assert table.origin_of(clients.blocks[0]) == 21
        blocks = routable_blocks(table)
        assert blocks == sorted(clients.blocks)
