"""Span-tree correctness for ``repro.obs.trace``.

Covers nesting (parent/child structure matches lexical nesting),
exception safety (spans close, record the error, and never swallow the
exception), disabled-mode no-ops (the shared noop span allocates no
tree), and both dump formats.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import disable, enable, enabled, set_tracer, span
from repro.obs.trace import Tracer, _NOOP


@pytest.fixture
def tracer():
    """A fresh enabled tracer installed for the test, restored after."""
    fresh = Tracer()
    previous = set_tracer(fresh)
    was_enabled = enabled()
    enable()
    try:
        yield fresh
    finally:
        set_tracer(previous)
        if not was_enabled:
            disable()


class TestNesting:
    def test_children_attach_to_lexical_parent(self, tracer):
        with span("root"):
            with span("a"):
                with span("a1"):
                    pass
            with span("b"):
                pass
        (root,) = tracer.roots
        assert root.name == "root"
        assert [child.name for child in root.children] == ["a", "b"]
        assert [child.name for child in root.children[0].children] == ["a1"]

    def test_sequential_roots_accumulate(self, tracer):
        with span("first"):
            pass
        with span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_only_roots_in_finished_list(self, tracer):
        with span("root"):
            with span("child"):
                pass
        assert [root.name for root in tracer.roots] == ["root"]

    def test_elapsed_covers_children(self, tracer):
        with span("root"):
            with span("child"):
                pass
        (root,) = tracer.roots
        (child,) = root.children
        assert root.elapsed >= child.elapsed >= 0.0

    def test_tags_are_recorded(self, tracer):
        with span("root", stage="compare", n=7):
            pass
        (root,) = tracer.roots
        assert root.tags == {"stage": "compare", "n": 7}
        assert root.to_dict()["tags"] == {"stage": "compare", "n": "7"}

    def test_threads_get_independent_trees(self, tracer):
        # The context variable isolates the current span per thread: a
        # span opened on another thread must not nest under this one.
        done = threading.Event()

        def other() -> None:
            with span("thread-root"):
                pass
            done.set()

        with span("main-root"):
            worker = threading.Thread(target=other)
            worker.start()
            assert done.wait(5)
            worker.join()
        names = sorted(root.name for root in tracer.roots)
        assert names == ["main-root", "thread-root"]
        for root in tracer.roots:
            assert root.children == []

    def test_bounded_memory(self):
        fresh = Tracer(max_roots=4)
        previous = set_tracer(fresh)
        enable()
        try:
            for index in range(10):
                with span(f"s{index}"):
                    pass
        finally:
            set_tracer(previous)
            disable()
        assert [root.name for root in fresh.roots] == ["s6", "s7", "s8", "s9"]


class TestExceptionSafety:
    def test_exception_propagates_and_is_recorded(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with span("root"):
                raise ValueError("boom")
        (root,) = tracer.roots
        assert root.status == "error"
        assert root.error == "ValueError: boom"
        assert root.elapsed >= 0.0

    def test_failed_child_leaves_parent_usable(self, tracer):
        with span("root"):
            with pytest.raises(RuntimeError):
                with span("bad"):
                    raise RuntimeError("inner")
            with span("good"):
                pass
        (root,) = tracer.roots
        assert root.status == "ok"
        assert [child.name for child in root.children] == ["bad", "good"]
        assert root.children[0].status == "error"
        assert root.children[1].status == "ok"

    def test_error_marker_in_dumps(self, tracer):
        with pytest.raises(RuntimeError):
            with span("root"):
                raise RuntimeError("x")
        document = json.loads(tracer.to_json())
        assert document["traces"][0]["status"] == "error"
        assert "RuntimeError" in document["traces"][0]["error"]
        assert "!" in tracer.flame_text()


class TestDisabledMode:
    def test_disabled_span_is_shared_noop(self):
        disable()
        assert span("anything", big="tag") is _NOOP
        assert span("other") is _NOOP

    def test_disabled_spans_build_no_tree(self):
        fresh = Tracer()
        previous = set_tracer(fresh)
        disable()
        try:
            with span("root"):
                with span("child"):
                    pass
        finally:
            set_tracer(previous)
        assert fresh.roots == []

    def test_noop_does_not_swallow_exceptions(self):
        disable()
        with pytest.raises(ValueError):
            with span("root"):
                raise ValueError("still visible")

    def test_enable_disable_toggles(self):
        enable()
        assert enabled()
        assert span("x") is not _NOOP
        disable()
        assert not enabled()


class TestDumps:
    def test_json_round_trips(self, tracer):
        with span("pipeline", series="demo"):
            with span("compare"):
                pass
        document = json.loads(tracer.to_json())
        (trace,) = document["traces"]
        assert trace["name"] == "pipeline"
        assert trace["tags"] == {"series": "demo"}
        assert trace["children"][0]["name"] == "compare"
        assert trace["status"] == "ok"

    def test_flame_text_shape(self, tracer):
        with span("pipeline"):
            with span("compare"):
                pass
            with span("clean"):
                pass
        text = tracer.flame_text()
        lines = [line for line in text.splitlines() if line.strip()]
        assert lines[0].startswith("pipeline")
        assert "100.0%" in lines[0]
        # Children indented beneath the root, slowest first.
        assert all(line.startswith("  ") for line in lines[1:])
        assert {line.split()[0] for line in lines[1:]} == {"compare", "clean"}

    def test_clear_resets(self, tracer):
        with span("root"):
            pass
        tracer.clear()
        assert tracer.roots == []
        assert tracer.flame_text() == ""


class TestPipelineIntegration:
    def test_run_produces_all_five_stages(self, tracer):
        from datetime import datetime, timedelta

        from repro.core.pipeline import Fenrir
        from repro.core.series import VectorSeries
        from repro.core.vector import StateCatalog

        t0 = datetime(2025, 1, 1)
        series = VectorSeries(["n1", "n2"], StateCatalog())
        for index in range(6):
            series.append_mapping(
                {"n1": "A", "n2": "B" if index % 2 else "A"},
                t0 + timedelta(days=index),
            )
        Fenrir().run(series)
        (root,) = [r for r in tracer.roots if r.name == "pipeline"]
        stages = [child.name for child in root.children]
        assert stages == ["clean", "weight", "compare", "cluster", "transition"]
