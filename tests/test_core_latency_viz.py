"""Tests for latency joins and the text visualizations."""

from __future__ import annotations

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.latency import (
    compare_latency,
    latency_by_catchment,
    latency_timeseries,
    mean_latency,
    percentile_by_catchment,
)
from repro.core.modes import find_modes
from repro.core.series import VectorSeries
from repro.core.transition import transition_matrix
from repro.core.vector import UNKNOWN, RoutingVector, StateCatalog
from repro.core.viz import (
    render_heatmap,
    render_mode_timeline,
    render_sankey,
    render_stackplot,
    render_transition_table,
    sankey_flows,
)


@pytest.fixture
def catalog():
    return StateCatalog()


@pytest.fixture
def vector(catalog):
    return RoutingVector.from_mapping(
        {"n1": "LAX", "n2": "LAX", "n3": "AMS", "n4": UNKNOWN, "n5": "err"},
        catalog=catalog,
    )


RTTS = {"n1": 10.0, "n2": 30.0, "n3": 120.0, "n4": 50.0, "n5": 40.0}


class TestLatency:
    def test_grouping_by_catchment(self, vector):
        groups = latency_by_catchment(vector, RTTS)
        assert sorted(groups) == ["AMS", "LAX"]
        assert groups["LAX"].tolist() == [10.0, 30.0]
        assert groups["AMS"].tolist() == [120.0]

    def test_special_states_excluded_by_default(self, vector):
        groups = latency_by_catchment(vector, RTTS)
        assert "err" not in groups and UNKNOWN not in groups
        with_special = latency_by_catchment(vector, RTTS, include_special=True)
        assert "err" in with_special

    def test_missing_rtts_skipped(self, vector):
        groups = latency_by_catchment(vector, {"n1": 5.0})
        assert groups == {"LAX": pytest.approx(np.array([5.0]))}

    def test_percentiles(self, vector):
        p50 = percentile_by_catchment(vector, RTTS, q=50)
        assert p50["LAX"] == 20.0

    def test_mean_latency_weighted(self, vector):
        weights = np.array([1.0, 1.0, 2.0, 1.0, 1.0])
        mean = mean_latency(vector, RTTS, weights)
        assert mean == pytest.approx((10 + 30 + 2 * 120) / 4)

    def test_mean_latency_no_data_is_nan(self, catalog):
        empty = RoutingVector.from_mapping({"x": UNKNOWN}, catalog=catalog)
        assert np.isnan(mean_latency(empty, {}))

    def test_latency_timeseries(self, catalog):
        series = VectorSeries(["n1", "n2"], catalog)
        t0 = datetime(2022, 1, 1)
        series.append_mapping({"n1": "LAX", "n2": "ARI"}, t0)
        series.append_mapping({"n1": "LAX", "n2": "LAX"}, t0 + timedelta(days=1))
        rtts = [{"n1": 10.0, "n2": 250.0}, {"n1": 10.0, "n2": 20.0}]
        result = latency_timeseries(series, lambda i: rtts[i], q=90)
        assert result["ARI"][0] == pytest.approx(250.0)
        assert np.isnan(result["ARI"][1])  # site vanished
        assert not np.isnan(result["LAX"]).any()

    def test_compare_latency_moved_networks(self, catalog):
        before = RoutingVector.from_mapping(
            {"a": "NEAR", "b": "FAR"}, catalog=catalog
        )
        after = RoutingVector.from_mapping({"a": "NEAR", "b": "NEAR"}, catalog=catalog)
        rtts_before = {"a": 10.0, "b": 200.0}
        rtts_after = {"a": 10.0, "b": 15.0}
        result = compare_latency(before, after, rtts_before, rtts_after)
        assert result["moved_networks"] == 1
        assert result["delta_ms"] < 0  # things got faster
        assert result["moved_delta_ms"] == pytest.approx(15.0 - 200.0)


class TestViz:
    def test_heatmap_shape_and_legend(self):
        similarity = np.array([[1.0, 0.2], [0.2, 1.0]])
        text = render_heatmap(similarity)
        lines = text.splitlines()
        assert len(lines) == 3  # 2 rows + legend
        assert "scale" in lines[-1]

    def test_heatmap_downsamples(self):
        similarity = np.ones((100, 100))
        text = render_heatmap(similarity, max_size=10)
        rows = text.splitlines()[:-1]
        assert len(rows) <= 11

    def test_heatmap_rejects_non_square(self):
        with pytest.raises(ValueError):
            render_heatmap(np.ones((2, 3)))

    def test_heatmap_nan_marker(self):
        similarity = np.array([[1.0, np.nan], [np.nan, 1.0]])
        assert "?" in render_heatmap(similarity)

    def test_stackplot_proportions(self):
        aggregates = {"LAX": np.array([3.0, 0.0]), "AMS": np.array([1.0, 4.0])}
        text = render_stackplot(aggregates, width=8)
        lines = text.splitlines()
        assert "A=LAX" in lines[0] and "B=AMS" in lines[0]
        assert lines[1].count("A") == 6 and lines[1].count("B") == 2
        assert lines[2].count("B") == 8

    def test_stackplot_empty(self):
        assert render_stackplot({}) == "(empty)"

    def test_transition_table_contains_counts(self, catalog):
        a = RoutingVector.from_mapping({"x": "STR", "y": "STR"}, catalog=catalog)
        b = RoutingVector.from_mapping({"x": "NAP", "y": "NAP"}, catalog=catalog)
        table = render_transition_table(transition_matrix(a, b))
        assert "STR" in table and "NAP" in table and "2" in table

    def test_mode_timeline_roman_numerals(self, simple_series):
        modes = find_modes(simple_series)
        text = render_mode_timeline(modes)
        assert "mode (i)" in text
        assert "Φ" in text

    def test_sankey_flows_counts(self):
        paths = [["USC", "ARN", "NTT"], ["USC", "ARN", "HE"], ["USC", "ARN", "NTT"]]
        flows = sankey_flows(paths, max_hops=3)
        assert (0, "USC", "ARN", 3.0) in flows
        assert (1, "ARN", "NTT", 2.0) in flows
        assert (1, "ARN", "HE", 1.0) in flows

    def test_sankey_flows_weighted(self):
        flows = sankey_flows([["a", "b"]], max_hops=2, weights=[5.0])
        assert flows == [(0, "a", "b", 5.0)]

    def test_sankey_short_paths(self):
        flows = sankey_flows([["solo"]], max_hops=4)
        assert flows == []

    def test_render_sankey(self):
        flows = sankey_flows([["USC", "ARN", "NTT"]], max_hops=3)
        text = render_sankey(flows)
        assert "hop 1 -> hop 2" in text
        assert "USC" in text
        assert render_sankey([]) == "(no flows)"
