"""Tests for Gower similarity Φ and the all-pairs matrix."""

from __future__ import annotations

import math
from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.compare import (
    UnknownPolicy,
    distance_matrix,
    phi,
    similarity_matrix,
)
from repro.core.series import VectorSeries
from repro.core.vector import UNKNOWN, RoutingVector, StateCatalog


def vec(mapping, catalog=None):
    return RoutingVector.from_mapping(mapping, catalog=catalog or StateCatalog())


def pair(map_a, map_b):
    catalog = StateCatalog()
    networks = sorted(set(map_a) | set(map_b))
    a = RoutingVector.from_mapping(map_a, catalog=catalog, networks=networks)
    b = RoutingVector.from_mapping(map_b, catalog=catalog, networks=networks)
    return a, b


class TestPhi:
    def test_identical_vectors(self):
        a, b = pair({"x": "A", "y": "B"}, {"x": "A", "y": "B"})
        assert phi(a, b) == 1.0

    def test_completely_different(self):
        a, b = pair({"x": "A", "y": "B"}, {"x": "B", "y": "A"})
        assert phi(a, b) == 0.0

    def test_half_match(self):
        a, b = pair({"x": "A", "y": "B"}, {"x": "A", "y": "A"})
        assert phi(a, b) == 0.5

    def test_unknowns_count_as_changed_pessimistic(self):
        # Both unknown: per the paper's M, unknown never matches.
        a, b = pair({"x": "A", "y": UNKNOWN}, {"x": "A", "y": UNKNOWN})
        assert phi(a, b) == 0.5

    def test_exclude_policy_drops_unknowns(self):
        a, b = pair({"x": "A", "y": UNKNOWN}, {"x": "A", "y": UNKNOWN})
        assert phi(a, b, policy=UnknownPolicy.EXCLUDE) == 1.0

    def test_exclude_policy_one_sided_unknown(self):
        a, b = pair({"x": "A", "y": "B"}, {"x": "A", "y": UNKNOWN})
        assert phi(a, b, policy=UnknownPolicy.EXCLUDE) == 1.0
        assert phi(a, b) == 0.5

    def test_exclude_policy_all_unknown_is_nan(self):
        a, b = pair({"x": UNKNOWN}, {"x": UNKNOWN})
        assert math.isnan(phi(a, b, policy=UnknownPolicy.EXCLUDE))

    def test_error_state_can_match(self):
        a, b = pair({"x": "err"}, {"x": "err"})
        assert phi(a, b) == 1.0

    def test_weights(self):
        a, b = pair({"x": "A", "y": "B"}, {"x": "A", "y": "C"})
        assert phi(a, b, weights=np.array([3.0, 1.0])) == 0.75

    def test_weight_validation(self):
        a, b = pair({"x": "A"}, {"x": "A"})
        with pytest.raises(ValueError):
            phi(a, b, weights=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            phi(a, b, weights=np.array([-1.0]))

    def test_all_zero_weights_rejected(self):
        # Regression: all-zero weights used to fall through to a silent
        # NaN (0/0); they now raise so the misconfiguration is visible.
        a, b = pair({"x": "A", "y": "B"}, {"x": "A", "y": "B"})
        with pytest.raises(ValueError, match="all zero"):
            phi(a, b, weights=np.zeros(2))

    def test_all_zero_weights_rejected_in_matrix(self, make_series):
        series = make_series(seed=2, num_networks=6, num_rounds=4)
        with pytest.raises(ValueError, match="all zero"):
            similarity_matrix(series, weights=np.zeros(6))

    def test_network_mismatch_rejected(self):
        catalog = StateCatalog()
        a = RoutingVector.from_mapping({"x": "A"}, catalog=catalog)
        b = RoutingVector.from_mapping({"y": "A"}, catalog=catalog)
        with pytest.raises(ValueError):
            phi(a, b)

    def test_catalog_mismatch_rejected(self):
        a = vec({"x": "A"})
        b = vec({"x": "A"})
        with pytest.raises(ValueError):
            phi(a, b)


states = st.sampled_from(["A", "B", "C", UNKNOWN])


@st.composite
def vector_pairs(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    networks = [f"n{i}" for i in range(count)]
    catalog = StateCatalog()
    map_a = {n: draw(states) for n in networks}
    map_b = {n: draw(states) for n in networks}
    a = RoutingVector.from_mapping(map_a, catalog=catalog, networks=networks)
    b = RoutingVector.from_mapping(map_b, catalog=catalog, networks=networks)
    return a, b


class TestPhiProperties:
    @given(vector_pairs())
    def test_bounds(self, vectors):
        a, b = vectors
        value = phi(a, b)
        assert 0.0 <= value <= 1.0

    @given(vector_pairs())
    def test_symmetry(self, vectors):
        a, b = vectors
        assert phi(a, b) == pytest.approx(phi(b, a))

    @given(vector_pairs())
    def test_self_similarity_is_fraction_known(self, vectors):
        a, _ = vectors
        known = float(np.count_nonzero(a.known_mask)) / len(a)
        assert phi(a, a) == pytest.approx(known)


class TestSimilarityMatrix:
    def make_series(self, maps, t0=datetime(2024, 1, 1)):
        networks = sorted(maps[0])
        series = VectorSeries(networks, StateCatalog())
        for index, mapping in enumerate(maps):
            series.append_mapping(mapping, t0 + timedelta(days=index))
        return series

    def test_matches_pairwise_phi(self):
        series = self.make_series(
            [
                {"x": "A", "y": "B", "z": UNKNOWN},
                {"x": "A", "y": "C", "z": "A"},
                {"x": "B", "y": "B", "z": "A"},
            ]
        )
        matrix = similarity_matrix(series)
        for i in range(3):
            for j in range(3):
                expected = phi(series[i], series[j])
                assert matrix[i, j] == pytest.approx(expected)

    def test_exclude_policy_matrix(self):
        series = self.make_series(
            [{"x": "A", "y": UNKNOWN}, {"x": "A", "y": UNKNOWN}]
        )
        matrix = similarity_matrix(series, policy=UnknownPolicy.EXCLUDE)
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_state_and_pairwise_paths_agree(self):
        # Force both code paths on the same data: with many distinct
        # states the pairwise path is used; compare against per-pair phi.
        t0 = datetime(2024, 1, 1)
        networks = [f"n{i}" for i in range(30)]
        series = VectorSeries(networks, StateCatalog())
        import random

        rng = random.Random(0)
        for day in range(5):
            mapping = {n: f"state{rng.randint(0, 200)}" for n in networks}
            series.append_mapping(mapping, t0 + timedelta(days=day))
        matrix = similarity_matrix(series)
        for i in range(5):
            for j in range(5):
                assert matrix[i, j] == pytest.approx(phi(series[i], series[j]))

    def test_weighted_matrix(self):
        series = self.make_series([{"x": "A", "y": "B"}, {"x": "A", "y": "C"}])
        weights = np.array([3.0, 1.0])
        matrix = similarity_matrix(series, weights=weights)
        assert matrix[0, 1] == pytest.approx(0.75)

    def test_distance_matrix_complements(self):
        series = self.make_series([{"x": "A"}, {"x": "B"}])
        distance = distance_matrix(series)
        assert distance[0, 0] == pytest.approx(0.0)
        assert distance[0, 1] == pytest.approx(1.0)

    def test_distance_matrix_nan_becomes_one(self):
        series = self.make_series([{"x": UNKNOWN}, {"x": UNKNOWN}])
        distance = distance_matrix(series, policy=UnknownPolicy.EXCLUDE)
        assert distance[0, 1] == 1.0
