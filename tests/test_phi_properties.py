"""Property-based tests for the Gower similarity Φ (§2.6.1).

Randomized vectors come from the seeded generators in
``tests/conftest.py``, so every failure reproduces from its seed. The
properties are the ones the paper's definition implies:

* symmetry: Φ(a, b) = Φ(b, a);
* identity: Φ(a, a) = 1 for fully-known vectors;
* monotonicity: breaking one agreeing network lowers Φ, fixing one
  disagreeing network raises it;
* scale invariance: rescaling every weight by c > 0 leaves Φ unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compare import UnknownPolicy, phi
from repro.core.vector import UNKNOWN_CODE

SEEDS = [0, 1, 2, 3, 17, 91]
POLICIES = list(UnknownPolicy)


def _random_weights(length: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.05, 10.0, length)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", POLICIES)
def test_phi_symmetry(make_vector_pair, seed, policy):
    a, b = make_vector_pair(seed=seed)
    weights = _random_weights(len(a), seed)
    forward = phi(a, b, weights=weights, policy=policy)
    backward = phi(b, a, weights=weights, policy=policy)
    assert forward == pytest.approx(backward, abs=1e-15)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", POLICIES)
def test_phi_self_similarity_of_fully_known(make_vector_pair, seed, policy):
    a, _ = make_vector_pair(seed=seed, unknown_fraction=0.0)
    assert np.all(a.codes != UNKNOWN_CODE)
    weights = _random_weights(len(a), seed)
    assert phi(a, a, weights=weights, policy=policy) == pytest.approx(1.0, abs=1e-15)


@pytest.mark.parametrize("seed", SEEDS)
def test_phi_self_similarity_with_unknowns(make_vector_pair, seed):
    """Unknowns cap Φ(a,a) below 1 pessimistically, not when excluded."""
    a, _ = make_vector_pair(seed=seed, unknown_fraction=0.4)
    if np.all(a.codes != UNKNOWN_CODE):  # the draw happened to be clean
        pytest.skip("seed produced no unknowns")
    pessimistic = phi(a, a, policy=UnknownPolicy.PESSIMISTIC)
    assert pessimistic < 1.0
    excluded = phi(a, a, policy=UnknownPolicy.EXCLUDE)
    assert excluded == pytest.approx(1.0, abs=1e-15)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", POLICIES)
def test_phi_monotone_in_single_network_flips(make_vector_pair, seed, policy):
    a, b = make_vector_pair(seed=seed, num_states=3, unknown_fraction=0.1)
    weights = _random_weights(len(a), seed)
    base = phi(a, b, weights=weights, policy=policy)
    agreeing = np.nonzero((a.codes == b.codes) & (a.codes != UNKNOWN_CODE))[0]
    disagreeing = np.nonzero(
        (a.codes != b.codes)
        & (a.codes != UNKNOWN_CODE)
        & (b.codes != UNKNOWN_CODE)
    )[0]
    if len(agreeing):
        # Flip one agreeing network to a fresh catchment: Φ must drop.
        index = int(agreeing[0])
        codes = b.codes.copy()
        codes[index] = b.catalog.code("elsewhere")
        lowered = phi(a, b.replace_codes(codes), weights=weights, policy=policy)
        assert lowered < base
    if len(disagreeing):
        # Align one disagreeing network with a: Φ must rise.
        index = int(disagreeing[0])
        codes = b.codes.copy()
        codes[index] = a.codes[index]
        raised = phi(a, b.replace_codes(codes), weights=weights, policy=policy)
        assert raised > base


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("scale", [0.25, 3.0, 1e6])
def test_phi_weight_rescaling_invariance(make_vector_pair, seed, policy, scale):
    a, b = make_vector_pair(seed=seed)
    weights = _random_weights(len(a), seed)
    base = phi(a, b, weights=weights, policy=policy)
    rescaled = phi(a, b, weights=scale * weights, policy=policy)
    assert rescaled == pytest.approx(base, abs=1e-12)


@pytest.mark.parametrize("seed", SEEDS)
def test_phi_bounded(make_vector_pair, seed):
    a, b = make_vector_pair(seed=seed, unknown_fraction=0.3)
    for policy in POLICIES:
        value = phi(a, b, policy=policy)
        assert np.isnan(value) or 0.0 <= value <= 1.0
