"""Fuzz tests: parsers must fail cleanly on malformed input.

Every decoder in the library consumes wire bytes or archive lines that
in production come from the network; none may crash with anything but
its documented error type, and every round-trip must be stable.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.table import RibEntry
from repro.bgp.updates import UpdateMessage
from repro.dns.edns import ClientSubnet, extract_client_subnet, extract_nsid
from repro.dns.message import DnsError, DnsMessage, decode_name
from repro.net.addr import AddressError, parse_address, parse_prefix


class TestDnsFuzz:
    @settings(max_examples=200)
    @given(st.binary(max_size=200))
    def test_message_decode_never_crashes(self, data):
        try:
            message = DnsMessage.decode(data)
        except DnsError:
            return
        # A successful decode must re-encode without raising.
        message.encode()

    @settings(max_examples=200)
    @given(st.binary(min_size=1, max_size=80), st.integers(min_value=0, max_value=40))
    def test_name_decode_never_crashes(self, data, offset):
        try:
            decode_name(data, min(offset, len(data) - 1))
        except DnsError:
            pass

    @settings(max_examples=100)
    @given(st.binary(max_size=40))
    def test_ecs_decode_never_crashes(self, payload):
        try:
            ClientSubnet.decode(payload)
        except DnsError:
            pass

    @settings(max_examples=100)
    @given(st.binary(max_size=120))
    def test_option_extractors_never_crash(self, rdata):
        from repro.dns.message import ResourceRecord, TYPE_OPT

        message = DnsMessage()
        message.additionals.append(ResourceRecord("", TYPE_OPT, 4096, 0, rdata))
        for extractor in (extract_client_subnet, extract_nsid):
            try:
                extractor(message)
            except DnsError:
                pass

    @settings(max_examples=100)
    @given(st.binary(max_size=150))
    def test_decode_encode_decode_stable(self, data):
        try:
            first = DnsMessage.decode(data)
        except DnsError:
            return
        second = DnsMessage.decode(first.encode())
        assert second.msg_id == first.msg_id
        assert second.questions == first.questions
        assert len(second.answers) == len(first.answers)


class TestLineFormatsFuzz:
    @settings(max_examples=200)
    @given(st.text(max_size=120))
    def test_rib_line_never_crashes(self, line):
        try:
            entry = RibEntry.from_line(line)
        except (ValueError, AddressError):
            return
        assert RibEntry.from_line(entry.to_line()) == entry

    @settings(max_examples=200)
    @given(st.text(max_size=120))
    def test_update_line_never_crashes(self, line):
        try:
            update = UpdateMessage.from_line(line)
        except (ValueError, AddressError):
            return
        assert UpdateMessage.from_line(update.to_line()) == update

    @settings(max_examples=200)
    @given(st.text(max_size=60))
    def test_address_parsers_never_crash(self, text):
        for parser in (parse_address, parse_prefix):
            try:
                parser(text)
            except AddressError:
                pass


class TestWartsFuzz:
    @settings(max_examples=100)
    @given(st.text(max_size=200))
    def test_record_from_json_never_crashes_oddly(self, text):
        from repro.traceroute.warts import record_from_json

        try:
            obj = json.loads(text)
        except json.JSONDecodeError:
            return
        try:
            record_from_json(obj)
        except (ValueError, KeyError, TypeError, AttributeError, AddressError):
            pass


class TestSeriesFuzz:
    @settings(max_examples=50)
    @given(st.text(max_size=300))
    def test_jsonl_reader_fails_cleanly(self, text):
        import io

        from repro.io.formats import read_series_jsonl

        try:
            read_series_jsonl(io.StringIO(text))
        except (ValueError, KeyError, TypeError, AttributeError):
            pass
