"""Tests for bootstrap statistics and the SVG chart renderers."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core.compare import UnknownPolicy, phi
from repro.core.stats import bootstrap_phi, permutation_change_test
from repro.core.vector import UNKNOWN, RoutingVector, StateCatalog
from repro.viz_svg import Svg, heatmap_svg, latency_svg, sankey_svg, stackplot_svg

T0 = datetime(2025, 1, 1)


def make_pair(size=40, matching=30, unknown=0):
    catalog = StateCatalog()
    networks = [f"n{i}" for i in range(size)]
    map_a = {}
    map_b = {}
    for index, network in enumerate(networks):
        if index < matching:
            map_a[network] = map_b[network] = "SAME"
        elif index < size - unknown:
            map_a[network], map_b[network] = "X", "Y"
        else:
            map_a[network] = map_b[network] = UNKNOWN
    a = RoutingVector.from_mapping(map_a, catalog=catalog, networks=networks)
    b = RoutingVector.from_mapping(map_b, catalog=catalog, networks=networks)
    return a, b


class TestBootstrapPhi:
    def test_point_matches_phi(self):
        a, b = make_pair()
        estimate = bootstrap_phi(a, b, samples=200)
        assert estimate.point == pytest.approx(phi(a, b))

    def test_interval_contains_point(self):
        a, b = make_pair()
        estimate = bootstrap_phi(a, b, samples=500)
        assert estimate.low <= estimate.point <= estimate.high
        assert estimate.point in estimate
        assert 0.0 < estimate.width < 0.5

    def test_deterministic_in_seed(self):
        a, b = make_pair()
        first = bootstrap_phi(a, b, samples=300, seed=5)
        second = bootstrap_phi(a, b, samples=300, seed=5)
        assert (first.low, first.high) == (second.low, second.high)

    def test_more_networks_tighter_interval(self):
        small = bootstrap_phi(*make_pair(size=30, matching=20), samples=500)
        large = bootstrap_phi(*make_pair(size=600, matching=400), samples=500)
        assert large.width < small.width

    def test_exclude_policy(self):
        a, b = make_pair(size=20, matching=10, unknown=5)
        pessimistic = bootstrap_phi(a, b, samples=100)
        excluding = bootstrap_phi(a, b, samples=100, policy=UnknownPolicy.EXCLUDE)
        assert excluding.point > pessimistic.point

    def test_validation(self):
        a, b = make_pair(size=5, matching=5)
        with pytest.raises(ValueError):
            bootstrap_phi(a, b, confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_phi(a, b, samples=3)

    def test_network_mismatch(self):
        catalog = StateCatalog()
        a = RoutingVector.from_mapping({"x": "A"}, catalog=catalog)
        b = RoutingVector.from_mapping({"y": "A"}, catalog=catalog)
        with pytest.raises(ValueError):
            bootstrap_phi(a, b)


class TestPermutationTest:
    def test_outlier_is_significant(self):
        changes = np.array([0.01] * 50 + [0.5])
        p_value = permutation_change_test(changes, 50)
        assert p_value < 0.05

    def test_typical_step_is_not(self):
        rng = np.random.default_rng(1)
        changes = rng.uniform(0.0, 0.05, 60)
        p_value = permutation_change_test(changes, 10)
        assert p_value > 0.05

    def test_index_validation(self):
        with pytest.raises(IndexError):
            permutation_change_test(np.array([0.1]), 5)

    def test_single_step(self):
        assert permutation_change_test(np.array([0.3]), 0) == 1.0


def parse_svg(svg: Svg) -> ET.Element:
    """Round-trip through a real XML parser: must be well-formed."""
    return ET.fromstring(svg.to_string())


def count_tags(root: ET.Element, tag: str) -> int:
    namespace = "{http://www.w3.org/2000/svg}"
    return len(root.findall(f".//{namespace}{tag}")) + len(root.findall(f".//{tag}"))


class TestSvgCharts:
    def test_heatmap_well_formed_grid(self):
        similarity = np.random.default_rng(0).uniform(0, 1, (12, 12))
        similarity = (similarity + similarity.T) / 2
        root = parse_svg(heatmap_svg(similarity))
        assert count_tags(root, "rect") == 144

    def test_heatmap_nan_flagged(self):
        similarity = np.array([[1.0, np.nan], [np.nan, 1.0]])
        text = heatmap_svg(similarity).to_string()
        assert "#f4c1c1" in text

    def test_heatmap_validation(self):
        with pytest.raises(ValueError):
            heatmap_svg(np.ones((2, 3)))

    def test_stackplot_areas_and_legend(self):
        aggregates = {
            "LAX": np.array([5.0, 4.0, 1.0]),
            "AMS": np.array([1.0, 2.0, 5.0]),
        }
        times = [T0 + timedelta(days=i) for i in range(3)]
        root = parse_svg(stackplot_svg(aggregates, times))
        assert count_tags(root, "polygon") == 2
        text = stackplot_svg(aggregates, times).to_string()
        assert "LAX" in text and "AMS" in text and "2025-01-01" in text

    def test_stackplot_validation(self):
        with pytest.raises(ValueError):
            stackplot_svg({})
        with pytest.raises(ValueError):
            stackplot_svg({"X": np.array([1.0])})

    def test_latency_lines_with_gaps(self):
        latency = {
            "ARI": np.array([200.0, 210.0, np.nan, np.nan]),
            "SCL": np.array([np.nan, np.nan, 40.0, 42.0]),
        }
        root = parse_svg(latency_svg(latency))
        # Each site contributes one polyline segment (gap splits produce
        # only segments with >= 2 points).
        assert count_tags(root, "polyline") == 2

    def test_latency_validation(self):
        with pytest.raises(ValueError):
            latency_svg({})

    def test_sankey_nodes_and_bands(self):
        flows = [
            (0, "USC", "ARN-B", 80.0),
            (0, "USC", "ARN-A", 20.0),
            (1, "ARN-B", "NTT", 50.0),
            (1, "ARN-B", "HE", 30.0),
        ]
        root = parse_svg(sankey_svg(flows))
        assert count_tags(root, "polygon") == 4  # one band per flow
        assert count_tags(root, "rect") >= 5  # nodes (+ none missing)

    def test_sankey_validation(self):
        with pytest.raises(ValueError):
            sankey_svg([])

    def test_svg_save(self, tmp_path):
        svg = Svg(100, 50)
        svg.rect(0, 0, 10, 10, fill="#000")
        path = tmp_path / "chart.svg"
        svg.save(path)
        assert path.read_text().startswith("<svg")

    def test_svg_dimension_validation(self):
        with pytest.raises(ValueError):
            Svg(0, 10)

    def test_attribute_escaping(self):
        svg = Svg(10, 10)
        svg.label(0, 0, 'quotes " & <tags>')
        parse_svg(svg)  # must not raise

    def test_report_export_svg(self, tmp_path):
        from repro.core import Fenrir, VectorSeries
        from repro.core.vector import StateCatalog

        series = VectorSeries(["a", "b"], StateCatalog())
        for day in range(6):
            series.append_mapping({"a": "X", "b": "Y"}, T0 + timedelta(days=day))
        report = Fenrir().run(series)
        written = report.export_svg(tmp_path / "svg")
        assert set(written) == {"heatmap", "stackplot"}
        for path in written.values():
            ET.parse(path)  # well-formed files on disk

    def test_full_report_charts(self):
        """Integration: charts straight from a Fenrir report."""
        from repro.core import Fenrir, VectorSeries
        from repro.core.vector import StateCatalog

        series = VectorSeries(["a", "b", "c"], StateCatalog())
        for day in range(8):
            site = "LAX" if day < 4 else "AMS"
            series.append_mapping({"a": site, "b": "LAX", "c": site}, T0 + timedelta(days=day))
        report = Fenrir().run(series)
        heatmap = heatmap_svg(report.similarity, report.cleaned.times)
        stack = stackplot_svg(
            report.cleaned.aggregate_over_time(), report.cleaned.times
        )
        parse_svg(heatmap)
        parse_svg(stack)
