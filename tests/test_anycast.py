"""Tests for the anycast substrate: service, Verfploeter, Atlas."""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.anycast.atlas import AtlasFleet, AtlasVP
from repro.anycast.service import AnycastService, AnycastSite
from repro.anycast.verfploeter import VerfploeterMapper
from repro.bgp.clients import allocate_clients
from repro.bgp.events import SiteDrain
from repro.measure.loss import IidLoss
from repro.net.geo import city
from repro.net.hitlist import Hitlist


@pytest.fixture
def service(small_topology):
    sites = [
        AnycastSite("A", 21, city("ORD")),
        AnycastSite("B", 23, city("FRA")),
    ]
    return AnycastService(small_topology, sites)


class TestService:
    def test_duplicate_labels_rejected(self, small_topology):
        sites = [AnycastSite("A", 21, city("ORD")), AnycastSite("A", 23, city("FRA"))]
        with pytest.raises(ValueError):
            AnycastService(small_topology, sites)

    def test_catchment_map_covers_topology(self, service, small_topology, t0):
        catchments = service.catchment_map(t0)
        assert set(catchments) == set(small_topology.nodes)
        assert set(catchments.values()) <= {"A", "B"}

    def test_catchment_of(self, service, t0):
        assert service.catchment_of(11, t0) == "A"
        assert service.catchment_of(13, t0) == "B"

    def test_drain_moves_catchments(self, service, t0):
        service.add_event(SiteDrain("A", t0, t0 + timedelta(days=1)))
        assert service.catchment_of(11, t0) == "B"
        assert service.active_sites(t0) == ["B"]

    def test_site_labels_and_location(self, service):
        assert service.site_labels() == ["A", "B"]
        assert service.location_of("A").code == "ORD"

    def test_local_only_site(self, small_topology, t0):
        sites = [
            AnycastSite("GLOBAL", 21, city("ORD")),
            AnycastSite("LOCAL", 13, city("FRA"), local_only=True),
        ]
        service = AnycastService(small_topology, sites)
        # LOCAL only serves R3's customer cone (S3).
        assert service.catchment_of(23, t0) == "LOCAL"
        assert service.catchment_of(1, t0) == "GLOBAL"


class TestVerfploeter:
    def test_known_blocks_get_sites(self, service, t0, rng):
        clients = allocate_clients([21, 22, 23], [3, 3, 3])
        hitlist = Hitlist.from_blocks_bimodal(clients.blocks, rng, alive_fraction=1.0)
        mapper = VerfploeterMapper(service, hitlist, clients, rng)
        observations = mapper.measure(t0)
        assert len(observations) == 9
        assert set(observations.values()) <= {"A", "B"}
        assert mapper.last_stats is not None
        assert mapper.last_stats.answered == 9

    def test_dead_blocks_are_absent(self, service, t0, rng):
        clients = allocate_clients([21], [5])
        hitlist = Hitlist.from_blocks_bimodal(
            clients.blocks, rng, alive_fraction=0.0, dead_score=0.0
        )
        mapper = VerfploeterMapper(service, hitlist, clients, rng)
        assert mapper.measure(t0) == {}

    def test_unreachable_catchment_absent(self, small_topology, t0, rng):
        # Partition S1's only provider link: its blocks get no reply path.
        sites = [AnycastSite("B", 23, city("FRA"))]
        small_topology.remove_link(11, 21)
        small_topology.remove_link(1, 11)
        small_topology.remove_link(11, 22)
        service = AnycastService(small_topology, sites)
        clients = allocate_clients([11], [2])
        hitlist = Hitlist.from_blocks_bimodal(clients.blocks, rng, alive_fraction=1.0)
        mapper = VerfploeterMapper(service, hitlist, clients, rng)
        assert mapper.measure(t0) == {}


class TestAtlas:
    def test_vps_see_their_as_catchment(self, service, t0, rng):
        fleet = AtlasFleet(service, [AtlasVP(0, 21), AtlasVP(1, 23)], rng)
        observations = fleet.measure(t0)
        assert observations == {"vp0": "A", "vp1": "B"}

    def test_loss_yields_err(self, service, t0, rng):
        fleet = AtlasFleet(service, [AtlasVP(0, 21)], rng, loss=IidLoss(1.0, rng))
        assert fleet.measure(t0) == {"vp0": "err"}

    def test_odd_identifier_yields_other(self, service, t0, rng):
        fleet = AtlasFleet(
            service,
            [AtlasVP(0, 21)],
            rng,
            odd_identifier_sites=frozenset({"A"}),
        )
        assert fleet.measure(t0) == {"vp0": "other"}

    def test_unreachable_yields_err(self, small_topology, t0, rng):
        sites = [AnycastSite("A", 21, city("ORD"))]
        small_topology.remove_link(11, 21)
        service = AnycastService(small_topology, sites)
        fleet = AtlasFleet(service, [AtlasVP(0, 23)], rng)
        assert fleet.measure(t0) == {"vp0": "err"}

    def test_place_vps(self, service, rng):
        fleet = AtlasFleet.place_vps(service, [21, 22, 23], count=10, rng=rng)
        assert len(fleet.vps) == 10
        assert all(vp.asn in {21, 22, 23} for vp in fleet.vps)
        assert fleet.network_ids() == [f"vp{i}" for i in range(10)]

    def test_place_vps_requires_candidates(self, service, rng):
        with pytest.raises(ValueError):
            AtlasFleet.place_vps(service, [], count=2, rng=rng)

    def test_drain_visible_through_fleet(self, service, t0, rng):
        fleet = AtlasFleet(service, [AtlasVP(0, 11)], rng)
        before = fleet.measure(t0)
        service.add_event(SiteDrain("A", t0 + timedelta(days=1), t0 + timedelta(days=2)))
        during = fleet.measure(t0 + timedelta(days=1))
        assert before == {"vp0": "A"}
        assert during == {"vp0": "B"}


class TestMangledVps:
    def test_mangled_fraction_yields_other(self, small_topology, t0, rng):
        from repro.anycast.service import AnycastService, AnycastSite
        from repro.net.geo import city

        sites = [AnycastSite("A", 21, city("ORD"))]
        service = AnycastService(small_topology, sites)
        fleet = AtlasFleet.place_vps(service, [22, 23], count=200, rng=rng)
        fleet.mangled_vp_fraction = 0.1
        observations = fleet.measure(t0)
        others = sum(1 for state in observations.values() if state == "other")
        assert 5 < others < 40  # ~10% of 200, deterministic per VP

    def test_mangled_set_is_stable_across_rounds(self, small_topology, t0, rng):
        from datetime import timedelta

        from repro.anycast.service import AnycastService, AnycastSite
        from repro.net.geo import city

        sites = [AnycastSite("A", 21, city("ORD"))]
        service = AnycastService(small_topology, sites)
        fleet = AtlasFleet.place_vps(service, [22], count=100, rng=rng)
        fleet.mangled_vp_fraction = 0.1
        first = {n for n, s in fleet.measure(t0).items() if s == "other"}
        second = {
            n
            for n, s in fleet.measure(t0 + timedelta(days=1)).items()
            if s == "other"
        }
        assert first == second  # a middlebox does not come and go
