"""Journal, snapshot, and JSONL-recovery durability tests."""

from __future__ import annotations

import io
import json
from datetime import datetime, timedelta

import pytest

from repro.core.online import OnlineFenrir
from repro.io.formats import (
    read_series_jsonl,
    recover_series_jsonl,
    write_series_jsonl,
)
from repro.serve.journal import (
    JOURNAL_FILE,
    JournalError,
    JournalRecord,
    JournalWriter,
    read_journal,
    read_snapshot,
    write_snapshot,
)
from repro.serve.monitor import DurableMonitor, MonitorError

T0 = datetime(2025, 1, 1)


def record(seq: int, site: str = "LAX") -> JournalRecord:
    return JournalRecord(
        seq=seq, time=T0 + timedelta(hours=seq), states={"n1": site}
    )


class TestJournal:
    def test_append_and_replay(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        writer = JournalWriter(path)
        for seq in range(1, 6):
            writer.append(record(seq))
        writer.close()
        records, tail = read_journal(path)
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        assert tail is None
        assert records[0].states == {"n1": "LAX"}

    def test_truncated_final_line_dropped(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        writer = JournalWriter(path)
        for seq in (1, 2, 3):
            writer.append(record(seq))
        writer.close()
        full = path.read_text()
        path.write_text(full[: len(full) - 17])  # kill mid final record
        records, tail = read_journal(path)
        assert [r.seq for r in records] == [1, 2]
        assert tail is not None
        assert tail.dropped_lines == 1

    def test_corrupt_crc_stops_replay(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        writer = JournalWriter(path)
        for seq in (1, 2, 3):
            writer.append(record(seq))
        writer.close()
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace("LAX", "AMS")  # payload no longer matches crc
        path.write_text("\n".join(lines) + "\n")
        records, tail = read_journal(path)
        assert [r.seq for r in records] == [1]
        assert tail is not None
        assert tail.first_bad_line == 2
        assert tail.dropped_lines == 2  # the bad line and everything after
        assert "crc" in tail.reason

    def test_sequence_gap_stops_replay(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        writer = JournalWriter(path)
        writer.append(record(1))
        writer.append(record(3))  # 2 went missing
        writer.close()
        records, tail = read_journal(path)
        assert [r.seq for r in records] == [1]
        assert "gap" in tail.reason

    def test_after_seq_skips_snapshotted_prefix(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        writer = JournalWriter(path)
        for seq in range(1, 6):
            writer.append(record(seq))
        writer.close()
        records, tail = read_journal(path, after_seq=3)
        assert [r.seq for r in records] == [4, 5]
        assert tail is None

    def test_missing_journal_is_empty(self, tmp_path):
        records, tail = read_journal(tmp_path / "absent.jsonl")
        assert records == [] and tail is None

    def test_garbage_line_reported(self, tmp_path):
        path = tmp_path / JOURNAL_FILE
        writer = JournalWriter(path)
        writer.append(record(1))
        writer.close()
        with path.open("a") as stream:
            stream.write("}}}} not json\n")
        records, tail = read_journal(path)
        assert [r.seq for r in records] == [1]
        assert tail is not None and tail.first_bad_line == 2


class TestSnapshot:
    def test_round_trip(self, tmp_path):
        tracker = OnlineFenrir(networks=["a", "b"])
        tracker.ingest({"a": "X", "b": "Y"}, T0)
        write_snapshot(tmp_path, 7, tracker.to_state())
        seq, state = read_snapshot(tmp_path)
        assert seq == 7
        restored = OnlineFenrir.from_state(state)
        assert restored.num_modes == 1

    def test_tampered_snapshot_detected(self, tmp_path):
        tracker = OnlineFenrir(networks=["a"])
        write_snapshot(tmp_path, 0, tracker.to_state())
        snapshot = tmp_path / "snapshot.json"
        snapshot.write_text(snapshot.read_text().replace('"a"', '"b"', 1))
        with pytest.raises(JournalError, match="checksum"):
            read_snapshot(tmp_path)

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(JournalError, match="no snapshot"):
            read_snapshot(tmp_path)

    def test_stale_manifest_from_interrupted_checkpoint(self, tmp_path):
        tracker = OnlineFenrir(networks=["a"])
        write_snapshot(tmp_path, 1, tracker.to_state())
        stale_manifest = (tmp_path / "MANIFEST.json").read_text()
        tracker.ingest({"a": "X"}, T0)
        write_snapshot(tmp_path, 2, tracker.to_state())
        # Crash between the two replaces: new snapshot, previous manifest.
        (tmp_path / "MANIFEST.json").write_text(stale_manifest)
        seq, state = read_snapshot(tmp_path)
        assert seq == 2
        assert OnlineFenrir.from_state(state).last_time == T0

    def test_unreadable_manifest_raises(self, tmp_path):
        tracker = OnlineFenrir(networks=["a"])
        write_snapshot(tmp_path, 0, tracker.to_state())
        (tmp_path / "MANIFEST.json").write_text("{ not json")
        with pytest.raises(JournalError, match="manifest"):
            read_snapshot(tmp_path)


class TestDurableMonitor:
    def feed(self, monitor: DurableMonitor, sites, start=0):
        for index, site in enumerate(sites, start=start):
            monitor.ingest({"n1": site, "n2": site}, T0 + timedelta(hours=index))

    def test_create_open_round_trip(self, tmp_path):
        monitor = DurableMonitor.create(tmp_path, "svc", ["n1", "n2"])
        self.feed(monitor, ["LAX", "LAX", "AMS", "LAX"])
        monitor.close()
        reopened = DurableMonitor.open(tmp_path, "svc")
        assert reopened.seq == 4
        assert reopened.replay.replayed_records == 4
        assert reopened.tracker.num_modes == 2
        oracle = OnlineFenrir(networks=["n1", "n2"])
        for index, site in enumerate(["LAX", "LAX", "AMS", "LAX"]):
            oracle.ingest({"n1": site, "n2": site}, T0 + timedelta(hours=index))
        assert reopened.tracker.mode_timeline() == oracle.mode_timeline()

    def test_snapshot_then_journal_replay(self, tmp_path):
        monitor = DurableMonitor.create(tmp_path, "svc", ["n1", "n2"])
        self.feed(monitor, ["LAX", "LAX"])
        monitor.snapshot()
        self.feed(monitor, ["AMS", "AMS"], start=2)
        monitor.close()
        reopened = DurableMonitor.open(tmp_path, "svc")
        assert reopened.replay.snapshot_seq == 2
        assert reopened.replay.replayed_records == 2
        assert len(reopened.tracker.updates) == 4

    def test_auto_snapshot_every(self, tmp_path):
        monitor = DurableMonitor.create(
            tmp_path, "svc", ["n1", "n2"], snapshot_every=2
        )
        self.feed(monitor, ["LAX", "LAX", "AMS"])
        monitor.close()
        reopened = DurableMonitor.open(tmp_path, "svc")
        assert reopened.replay.snapshot_seq == 2
        assert reopened.replay.replayed_records == 1

    def test_truncated_journal_recovers_prefix(self, tmp_path):
        monitor = DurableMonitor.create(tmp_path, "svc", ["n1", "n2"])
        self.feed(monitor, ["LAX", "AMS", "FRA"])
        monitor.close()
        journal = tmp_path / "svc" / JOURNAL_FILE
        text = journal.read_text()
        journal.write_text(text[: len(text) - 25])
        reopened = DurableMonitor.open(tmp_path, "svc")
        assert reopened.seq == 2
        assert reopened.replay.dropped_lines == 1
        # Recovery rewrote the journal; the next ingest continues cleanly.
        reopened.ingest({"n1": "NRT", "n2": "NRT"}, T0 + timedelta(hours=9))
        reopened.close()
        final = DurableMonitor.open(tmp_path, "svc")
        assert final.seq == 3
        assert len(final.tracker.updates) == 3

    def test_duplicate_create_rejected(self, tmp_path):
        DurableMonitor.create(tmp_path, "svc", ["n1"]).close()
        with pytest.raises(MonitorError, match="exists"):
            DurableMonitor.create(tmp_path, "svc", ["n1"])

    @pytest.mark.parametrize("name", ["", "../evil", "a/b", ".hidden", "x" * 80])
    def test_unsafe_names_rejected(self, tmp_path, name):
        with pytest.raises(MonitorError, match="invalid monitor name"):
            DurableMonitor.create(tmp_path, name, ["n1"])

    def test_out_of_order_ingest_not_journaled(self, tmp_path):
        monitor = DurableMonitor.create(tmp_path, "svc", ["n1"])
        monitor.ingest({"n1": "LAX"}, T0)
        with pytest.raises(MonitorError, match="forward in time"):
            monitor.ingest({"n1": "AMS"}, T0)
        monitor.close()
        records, tail = read_journal(tmp_path / "svc" / JOURNAL_FILE)
        assert len(records) == 1 and tail is None

    def test_non_string_states_rejected_before_journal(self, tmp_path):
        monitor = DurableMonitor.create(tmp_path, "svc", ["n1"])
        with pytest.raises(MonitorError, match="state labels"):
            monitor.ingest({"n1": ["LAX", "AMS"]}, T0)
        assert monitor.seq == 0
        # The stream continues cleanly: no seq burned, nothing journaled.
        monitor.ingest({"n1": "LAX"}, T0)
        monitor.close()
        records, tail = read_journal(tmp_path / "svc" / JOURNAL_FILE)
        assert [r.seq for r in records] == [1] and tail is None
        assert DurableMonitor.open(tmp_path, "svc").seq == 1

    def test_unapplyable_record_skipped_on_open(self, tmp_path):
        monitor = DurableMonitor.create(tmp_path, "svc", ["n1"])
        monitor.ingest({"n1": "LAX"}, T0)
        monitor.close()
        # An old server could journal a record the tracker cannot apply
        # (non-string state label raised only inside the apply); recovery
        # must skip-and-report it, not crash open() forever.
        writer = JournalWriter(tmp_path / "svc" / JOURNAL_FILE)
        writer.append(
            JournalRecord(
                seq=2, time=T0 + timedelta(hours=1), states={"n1": ["A", "B"]}
            )
        )
        writer.close()
        reopened = DurableMonitor.open(tmp_path, "svc")
        assert reopened.replay.skipped_records == 1
        assert reopened.replay.replayed_records == 1
        assert len(reopened.tracker.updates) == 1
        assert reopened.seq == 2  # the poison record's seq stays burned
        reopened.ingest({"n1": "AMS"}, T0 + timedelta(hours=2))
        reopened.close()
        final = DurableMonitor.open(tmp_path, "svc")
        assert final.replay.skipped_records == 0
        assert len(final.tracker.updates) == 2


class TestSeriesJsonlRecovery:
    def series_text(self) -> str:
        from repro.core.series import VectorSeries
        from repro.core.vector import StateCatalog

        series = VectorSeries(["n1", "n2"], StateCatalog())
        for index, site in enumerate(["LAX", "LAX", "AMS"]):
            series.append_mapping(
                {"n1": site, "n2": "LAX"}, T0 + timedelta(hours=index)
            )
        buffer = io.StringIO()
        write_series_jsonl(series, buffer)
        return buffer.getvalue()

    def test_clean_stream_has_no_dropped_tail(self):
        series, dropped = recover_series_jsonl(io.StringIO(self.series_text()))
        assert len(series) == 3
        assert dropped is None

    def test_truncated_tail_recovered_and_reported(self):
        text = self.series_text()
        truncated = text[: len(text) - 20]  # mid final record
        with pytest.raises(json.JSONDecodeError):
            read_series_jsonl(io.StringIO(truncated))
        series, dropped = recover_series_jsonl(io.StringIO(truncated))
        assert len(series) == 2
        assert dropped is not None
        assert dropped.first_bad_line == 4
        assert dropped.dropped_lines == 1
        assert "dropped 1 line" in str(dropped)

    def test_garbage_mid_file_drops_suffix(self):
        lines = self.series_text().splitlines()
        lines.insert(2, "!!! binary garbage !!!")
        series, dropped = recover_series_jsonl(io.StringIO("\n".join(lines)))
        assert len(series) == 1  # valid prefix only: later lines are suspect
        assert dropped.first_bad_line == 3
        assert dropped.dropped_lines == 3

    def test_errors_recover_mode_returns_prefix(self):
        text = self.series_text()[:-20]
        series = read_series_jsonl(io.StringIO(text), errors="recover")
        assert len(series) == 2

    def test_strict_mode_still_raises(self):
        lines = self.series_text().splitlines()
        lines.append('{"type":"mystery"}')
        with pytest.raises(ValueError, match="unknown line type"):
            read_series_jsonl(io.StringIO("\n".join(lines)))

    def test_bad_errors_argument(self):
        with pytest.raises(ValueError, match="strict"):
            read_series_jsonl(io.StringIO(""), errors="ignore")

    def test_unreadable_header_still_raises(self):
        with pytest.raises(ValueError):
            recover_series_jsonl(io.StringIO("not json at all\n"))

    def test_empty_stream_raises(self):
        with pytest.raises(ValueError, match="no header"):
            recover_series_jsonl(io.StringIO(""))
