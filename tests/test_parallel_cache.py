"""Cache correctness: hits, content-keyed misses, corruption recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compare import UnknownPolicy, similarity_matrix
from repro.parallel import MatrixCache, SimilarityEngine, matrix_cache_key


@pytest.fixture
def cached_engine(tmp_path):
    return SimilarityEngine(n_jobs=1, cache_dir=tmp_path / "phi-cache")


class TestCacheHits:
    def test_identical_inputs_hit(self, make_series, cached_engine):
        series = make_series(seed=3)
        first = cached_engine.similarity_matrix(series)
        assert cached_engine.stats.cache_misses == 1
        assert cached_engine.stats.cache_hits == 0
        second = cached_engine.similarity_matrix(series)
        assert cached_engine.stats.cache_hits == 1
        assert np.array_equal(first, second)

    def test_cache_shared_across_engine_instances(self, make_series, tmp_path):
        series = make_series(seed=4)
        writer = SimilarityEngine(n_jobs=1, cache_dir=tmp_path)
        expected = writer.similarity_matrix(series)
        reader = SimilarityEngine(n_jobs=2, tile_size=4, cache_dir=tmp_path)
        result = reader.similarity_matrix(series)
        assert reader.stats.cache_hits == 1
        assert reader.stats.parallel_runs == 0  # no recomputation
        assert np.array_equal(expected, result)

    def test_cached_matrix_equals_serial_oracle(self, make_series, cached_engine):
        series = make_series(seed=12, unknown_fraction=0.25)
        cached_engine.similarity_matrix(series, policy=UnknownPolicy.EXCLUDE)
        result = cached_engine.similarity_matrix(series, policy=UnknownPolicy.EXCLUDE)
        reference = similarity_matrix(series, policy=UnknownPolicy.EXCLUDE)
        assert np.array_equal(np.isnan(reference), np.isnan(result))
        finite = ~np.isnan(reference)
        assert np.array_equal(reference[finite], result[finite])


class TestCacheMisses:
    def test_different_codes_miss(self, make_series, cached_engine):
        cached_engine.similarity_matrix(make_series(seed=5))
        cached_engine.similarity_matrix(make_series(seed=6))
        assert cached_engine.stats.cache_misses == 2
        assert cached_engine.stats.cache_hits == 0

    def test_different_weights_miss(self, make_series, cached_engine):
        series = make_series(seed=5)
        weights = np.full(len(series.networks), 2.0)
        cached_engine.similarity_matrix(series, weights=weights)
        cached_engine.similarity_matrix(series, weights=1.01 * weights)
        cached_engine.similarity_matrix(series)  # unweighted is its own key
        assert cached_engine.stats.cache_misses == 3
        assert cached_engine.stats.cache_hits == 0

    def test_different_policy_misses(self, make_series, cached_engine):
        series = make_series(seed=5)
        cached_engine.similarity_matrix(series, policy=UnknownPolicy.PESSIMISTIC)
        cached_engine.similarity_matrix(series, policy=UnknownPolicy.EXCLUDE)
        assert cached_engine.stats.cache_misses == 2

    def test_key_function_is_content_addressed(self, make_series):
        series = make_series(seed=8)
        codes = series.matrix
        key = matrix_cache_key(codes, None, UnknownPolicy.PESSIMISTIC)
        assert key == matrix_cache_key(codes.copy(), None, UnknownPolicy.PESSIMISTIC)
        mutated = codes.copy()
        mutated[0, 0] += 1
        assert key != matrix_cache_key(mutated, None, UnknownPolicy.PESSIMISTIC)


class TestCacheCorruption:
    def _entry_paths(self, cache_dir):
        matrices = list(cache_dir.glob("*.npy"))
        assert len(matrices) == 1
        return matrices[0]

    def test_truncated_file_recomputed(self, make_series, cached_engine):
        series = make_series(seed=9)
        expected = cached_engine.similarity_matrix(series)
        matrix_path = self._entry_paths(cached_engine.cache.directory)
        matrix_path.write_bytes(matrix_path.read_bytes()[:20])  # truncate
        result = cached_engine.similarity_matrix(series)
        assert cached_engine.stats.cache_hits == 0
        assert cached_engine.cache.evictions == 1
        assert np.array_equal(expected, result)
        # The recomputed entry replaced the corrupt one and hits again.
        cached_engine.similarity_matrix(series)
        assert cached_engine.stats.cache_hits == 1

    def test_bit_flipped_matrix_detected_by_digest(self, make_series, cached_engine):
        series = make_series(seed=10)
        expected = cached_engine.similarity_matrix(series)
        matrix_path = self._entry_paths(cached_engine.cache.directory)
        payload = bytearray(matrix_path.read_bytes())
        payload[-1] ^= 0xFF  # flip bits inside the data section
        matrix_path.write_bytes(bytes(payload))
        result = cached_engine.similarity_matrix(series)
        assert cached_engine.stats.cache_hits == 0
        assert np.array_equal(expected, result)

    def test_missing_digest_sidecar_is_a_miss(self, make_series, cached_engine):
        series = make_series(seed=11)
        cached_engine.similarity_matrix(series)
        for sidecar in cached_engine.cache.directory.glob("*.sha256"):
            sidecar.unlink()
        cached_engine.similarity_matrix(series)
        assert cached_engine.stats.cache_hits == 0
        assert cached_engine.stats.cache_misses == 2

    def test_wrong_shape_entry_evicted(self, make_series, tmp_path):
        cache = MatrixCache(tmp_path)
        key = "deadbeef"
        cache.store(key, np.eye(4))
        assert cache.load(key, expected_size=4) is not None
        assert cache.load(key, expected_size=5) is None  # shape mismatch
        assert cache.evictions == 1
        assert cache.load(key, expected_size=4) is None  # evicted for good


class TestCacheHousekeeping:
    def test_clear_and_len(self, tmp_path):
        cache = MatrixCache(tmp_path)
        cache.store("a", np.zeros((2, 2)))
        cache.store("b", np.ones((3, 3)))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.load("a", 2) is None
