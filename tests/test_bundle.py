"""Tests for dataset release bundles."""

from __future__ import annotations

import json
from datetime import datetime, timedelta

import pytest

from repro.core.series import VectorSeries
from repro.core.vector import StateCatalog
from repro.io.bundle import Bundle, BundleError, read_bundle, write_bundle


@pytest.fixture
def series():
    series = VectorSeries(["n1", "n2"], StateCatalog())
    t0 = datetime(2025, 1, 1)
    for day in range(5):
        series.append_mapping({"n1": "LAX", "n2": "AMS"}, t0 + timedelta(days=day))
    return series


class TestRoundTrip:
    def test_write_and_read(self, series, tmp_path):
        directory = write_bundle(
            tmp_path / "usc", "USC/traceroute", series, {"seed": 42}
        )
        bundle = read_bundle(directory)
        assert bundle.name == "USC/traceroute"
        assert bundle.observations == 5
        assert bundle.series.networks == series.networks
        assert bundle.metadata["provenance"] == {"seed": 42}
        assert bundle.metadata["networks"] == 2

    def test_metadata_summarizes_series(self, series, tmp_path):
        directory = write_bundle(tmp_path / "b", "x", series)
        metadata = json.loads((directory / "metadata.json").read_text())
        assert metadata["first_observation"].startswith("2025-01-01")
        assert metadata["last_observation"].startswith("2025-01-05")
        assert "LAX" in metadata["states"]


class TestVerification:
    def test_tampered_series_detected(self, series, tmp_path):
        directory = write_bundle(tmp_path / "b", "x", series)
        series_path = directory / "series.jsonl"
        series_path.write_text(series_path.read_text().replace("LAX", "ZZZ"))
        with pytest.raises(BundleError, match="checksum"):
            read_bundle(directory)

    def test_verification_skippable(self, series, tmp_path):
        directory = write_bundle(tmp_path / "b", "x", series)
        series_path = directory / "series.jsonl"
        series_path.write_text(series_path.read_text().replace("LAX", "ZZZ"))
        bundle = read_bundle(directory, verify=False)
        assert isinstance(bundle, Bundle)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(BundleError, match="manifest"):
            read_bundle(tmp_path)

    def test_missing_file(self, series, tmp_path):
        directory = write_bundle(tmp_path / "b", "x", series)
        (directory / "series.jsonl").unlink()
        with pytest.raises(BundleError, match="missing"):
            read_bundle(directory)

    def test_inconsistent_metadata(self, series, tmp_path):
        directory = write_bundle(tmp_path / "b", "x", series)
        metadata_path = directory / "metadata.json"
        document = json.loads(metadata_path.read_text())
        document["observations"] = 99
        metadata_path.write_text(json.dumps(document))
        with pytest.raises(BundleError, match="disagrees"):
            read_bundle(directory, verify=False)

    def test_corrupt_manifest(self, series, tmp_path):
        directory = write_bundle(tmp_path / "b", "x", series)
        (directory / "MANIFEST.json").write_text("{not json")
        with pytest.raises(BundleError, match="unreadable"):
            read_bundle(directory)


class TestDatasetBundles:
    def test_bundle_a_generated_dataset(self, tmp_path):
        """The release workflow end-to-end on a real scenario."""
        from repro.datasets import wikipedia

        study = wikipedia.generate(num_prefixes=120, cadence=timedelta(days=7))
        directory = write_bundle(
            tmp_path / "wiki",
            "Wiki/EDNS-CS",
            study.series,
            {"generator": "repro.datasets.wikipedia", "num_prefixes": 120},
        )
        bundle = read_bundle(directory)
        assert bundle.metadata["provenance"]["generator"] == "repro.datasets.wikipedia"
        from repro.core import Fenrir

        report = Fenrir().run(bundle.series)  # bundles feed straight back in
        assert len(report.modes) >= 1
