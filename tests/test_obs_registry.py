"""Unit and property tests for the ``repro.obs`` metrics registry.

The load-bearing property (a satellite of the observability PR): the
exact nearest-rank percentiles the ``stats`` command computes from
:class:`LatencyRecorder` windows and the bucket-bracket estimates the
Prometheus histograms can give MUST agree — for any workload, the
histogram's ``percentile_bounds(q)`` brackets the recorder's exact
``_percentile(sorted(samples), q)``.
"""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    LatencyRecorder,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("requests_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"kind": "a"})
        b = registry.counter("x_total", labels={"kind": "b"})
        assert a is not b
        a.inc()
        assert b.value == 0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"a": "1", "b": "2"})
        b = registry.counter("x_total", labels={"b": "2", "a": "1"})
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_callback_wins_over_static(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set_function(lambda: 42)
        assert gauge.value == 42
        gauge.set(1)  # setting a static value drops the callback
        assert gauge.value == 1

    def test_dead_callback_reads_nan_not_raises(self):
        gauge = MetricsRegistry().gauge("depth")

        def boom() -> float:
            raise RuntimeError("queue torn down")

        gauge.set_function(boom)
        assert math.isnan(gauge.value)


class TestKindCollisions:
    def test_same_name_different_kind_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="counter"):
            registry.gauge("thing")
        with pytest.raises(ValueError, match="counter"):
            registry.histogram("thing")


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus `le` is inclusive: observe(bound) counts in bound.
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.bucket_counts == [1, 0, 0]

    def test_overflow_goes_to_inf_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(99.0)
        assert histogram.bucket_counts == [0, 0, 1]
        assert histogram.cumulative_counts() == [0, 0, 1]

    def test_sum_and_count(self):
        histogram = Histogram("h", buckets=(1.0,))
        for value in (0.5, 1.5, 2.5):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(4.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_inf_bound_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, float("inf")))

    def test_percentile_bounds_empty(self):
        histogram = Histogram("h", buckets=(1.0,))
        assert histogram.percentile_bounds(0.5) == (0.0, 0.0)

    def test_percentile_bounds_simple(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            histogram.observe(value)
        # nearest-rank p50 of 4 samples = 2nd = 1.5, in (1.0, 2.0]
        assert histogram.percentile_bounds(0.5) == (1.0, 2.0)
        assert histogram.percentile_bounds(1.0) == (2.0, 4.0)

    def test_observe_is_thread_tolerant(self):
        # Not a strict linearizability claim — just that concurrent
        # observes neither crash nor lose the total count under the GIL.
        histogram = Histogram("h", buckets=DEFAULT_LATENCY_BUCKETS)

        def hammer() -> None:
            for _ in range(1000):
                histogram.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 4000
        assert sum(histogram.bucket_counts) == 4000


class TestLatencyRecorderRegistryMirror:
    def test_observations_feed_registry_histogram(self):
        registry = MetricsRegistry()
        recorder = LatencyRecorder(
            registry=registry, histogram_name="cmd_seconds", label_name="command"
        )
        recorder.observe("ingest", 0.001)
        recorder.observe("ingest", 0.002)
        recorder.observe("query", 0.1)
        ingest = registry.histogram("cmd_seconds", labels={"command": "ingest"})
        query = registry.histogram("cmd_seconds", labels={"command": "query"})
        assert ingest.count == 2
        assert query.count == 1

    def test_without_registry_stays_standalone(self):
        recorder = LatencyRecorder()
        recorder.observe("ingest", 0.001)
        assert recorder.summary()["ingest"]["count"] == 1


# -- the recorder/histogram agreement property --------------------------------

_WORKLOADS = st.lists(
    st.floats(min_value=1e-6, max_value=30.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
)
_FRACTIONS = st.sampled_from([0.25, 0.5, 0.75, 0.9, 0.99, 1.0])


class TestPercentileAgreement:
    @settings(max_examples=200, deadline=None)
    @given(samples=_WORKLOADS, fraction=_FRACTIONS)
    def test_histogram_bounds_bracket_nearest_rank(self, samples, fraction):
        """For any workload, the histogram's percentile bucket brackets
        the exact nearest-rank percentile the recorder reports."""
        recorder = LatencyRecorder(window=len(samples))
        histogram = Histogram("h", buckets=DEFAULT_LATENCY_BUCKETS)
        for value in samples:
            recorder.observe("cmd", value)
            histogram.observe(value)
        exact = recorder._percentile(sorted(samples), fraction)
        lower, upper = histogram.percentile_bounds(fraction)
        assert lower <= exact <= upper, (
            f"exact nearest-rank {exact} outside histogram bracket "
            f"({lower}, {upper}] for q={fraction} over {len(samples)} samples"
        )

    @settings(max_examples=100, deadline=None)
    @given(samples=_WORKLOADS)
    def test_recorder_window_and_histogram_counts_agree(self, samples):
        recorder = LatencyRecorder(window=len(samples))
        histogram = Histogram("h", buckets=DEFAULT_LATENCY_BUCKETS)
        for value in samples:
            recorder.observe("cmd", value)
            histogram.observe(value)
        assert recorder.summary()["cmd"]["count"] == histogram.count
        assert histogram.total == pytest.approx(sum(samples), rel=1e-9)
