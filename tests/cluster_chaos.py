"""Reusable fault-injection harness for the sharded serve tier.

Not a test module (no ``test_`` prefix): ``tests/test_serve_cluster.py``
imports these pieces to build the kill-a-shard, kill-the-router,
kill-during-handoff, and replication-failover scenarios. The harness
owns exactly three concerns:

* **process control** — spawn a real ``repro serve --shards N`` cluster
  as subprocesses, parse the readiness lines for every child's address
  and pid, SIGKILL chosen victims, restart the whole tier;
* **resilient feeding** — push a deterministic round sequence through
  the router, surviving failovers by re-querying how many rounds the
  cluster actually applied and resuming from there (the durability
  contract makes the applied count authoritative);
* **oracle comparison** — replay the same rounds through an
  uninterrupted in-process :class:`~repro.core.online.OnlineFenrir`
  and compare *canonical state bytes*, not summaries, so any divergence
  anywhere in the state document fails loudly.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from datetime import datetime, timedelta
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.online import OnlineFenrir
from repro.serve import (
    FrameError,
    ServeClient,
    ServeClientError,
    ServeTimeout,
)
from repro.serve.ring import HashRing

REPO_ROOT = Path(__file__).resolve().parent.parent
T0 = datetime(2025, 1, 1)

Round = Tuple[Dict[str, str], datetime]

_RETRYABLE = (ServeClientError, ServeTimeout, FrameError, OSError)


def generate_rounds(
    networks: Sequence[str], count: int, seed: int = 0, states: int = 4
) -> List[Round]:
    """A deterministic, timestamp-ordered round sequence.

    Seeded ``random.Random`` keeps every scenario reproducible from its
    seed; strictly increasing timestamps keep replays idempotent under
    the monitor's out-of-order rejection.
    """
    import random

    rng = random.Random(seed)
    assignment = {network: f"s{rng.randrange(states)}" for network in networks}
    rounds: List[Round] = []
    for index in range(count):
        if index and rng.random() < 0.4:
            for network in networks:
                if rng.random() < 0.3:
                    assignment[network] = f"s{rng.randrange(states)}"
        rounds.append((dict(assignment), T0 + timedelta(minutes=index)))
    return rounds


def oracle_state(networks: Sequence[str], rounds: Sequence[Round]) -> dict:
    """The uninterrupted single-process run's exact state document."""
    oracle = OnlineFenrir(networks=list(networks))
    for states, when in rounds:
        oracle.ingest(states, when)
    return oracle.to_state()


def canonical(state: dict) -> bytes:
    """Canonical bytes of a state document, for exact equality asserts."""
    return json.dumps(state, sort_keys=True, separators=(",", ":")).encode()


class ClusterHarness:
    """A real ``repro serve --shards N`` cluster under test control."""

    def __init__(
        self,
        data_dir: Path,
        shards: int = 2,
        replicate: bool = False,
        sync_interval: float = 0.1,
        snapshot_every: int = 1000,
        queue_size: int = 256,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.shards = shards
        self.replicate = replicate
        self.sync_interval = sync_interval
        self.snapshot_every = snapshot_every
        self.queue_size = queue_size
        self.ring = HashRing.for_cluster(shards)
        self.process: Optional[subprocess.Popen] = None
        self.address: Optional[Tuple[str, int]] = None
        #: (shard, role) -> (address, pid), parsed from readiness lines.
        self.children: Dict[Tuple[int, str], Tuple[Tuple[str, int], int]] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self, timeout: float = 90.0) -> "ClusterHarness":
        assert self.process is None, "cluster already running"
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--shards",
            str(self.shards),
            "--port",
            "0",
            "--data-dir",
            str(self.data_dir),
            "--queue-size",
            str(self.queue_size),
            "--snapshot-every",
            str(self.snapshot_every),
            "--sync-interval",
            str(self.sync_interval),
            "--exit-on-stdin-close",
        ]
        if self.replicate:
            argv.append("--replicate")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.process = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        self.children = {}
        deadline = time.monotonic() + timeout
        assert self.process.stdout is not None
        while True:
            if time.monotonic() > deadline:
                self.stop()
                raise TimeoutError("cluster did not become ready in time")
            line = self.process.stdout.readline().decode("utf-8", "replace")
            if not line:
                raise RuntimeError("cluster exited during startup")
            text = line.strip()
            if text.startswith("shard "):
                # "shard N ROLE listening on H:P pid=M"
                parts = text.split()
                shard, role = int(parts[1]), parts[2]
                host, _, port = parts[5].rpartition(":")
                pid = int(parts[6].split("=", 1)[1])
                self.children[(shard, role)] = ((host, int(port)), pid)
            elif text.startswith("listening on "):
                host, _, port = text.split()[-1].rpartition(":")
                self.address = (host, int(port))
                return self

    def stop(self) -> None:
        if self.process is None:
            return
        process, self.process = self.process, None
        if process.poll() is None:
            assert process.stdin is not None
            process.stdin.close()
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=15)
        if process.stdout is not None:
            process.stdout.close()

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def restart(self, timeout: float = 90.0) -> "ClusterHarness":
        """Stop (if running) and start again over the same data dir."""
        self.stop()
        self.address = None
        return self.start(timeout=timeout)

    # -- fault injection -----------------------------------------------------

    def kill_child(self, shard: int, role: str = "primary") -> int:
        """SIGKILL one shard process; returns the killed pid."""
        _address, pid = self.children[(shard, role)]
        os.kill(pid, signal.SIGKILL)
        return pid

    def kill_router(self) -> None:
        """SIGKILL the supervisor/router and wait for the children to die.

        The children hold the read end of the supervisor's stdin pipes;
        its death closes the write ends, and ``--exit-on-stdin-close``
        retires every shard. Waiting for that here means ``restart()``
        never races a dying shard for the journal directories.
        """
        assert self.process is not None
        self.process.kill()
        self.process.wait(timeout=15)
        if self.process.stdout is not None:
            self.process.stdout.close()
        self.process = None
        deadline = time.monotonic() + 30.0
        pids = [pid for _address, pid in self.children.values()]
        while time.monotonic() < deadline:
            alive = []
            for pid in pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue
                alive.append(pid)
            pids = alive
            if not pids:
                return
            time.sleep(0.1)
        raise TimeoutError(f"shard processes {pids} survived router death")

    def owner_of(self, monitor: str) -> int:
        return self.ring.owner(monitor)

    # -- clients and polling -------------------------------------------------

    def client(self, timeout: float = 10.0) -> ServeClient:
        assert self.address is not None
        return ServeClient(self.address[0], self.address[1], timeout=timeout)

    def child_client(
        self, shard: int, role: str, timeout: float = 10.0
    ) -> ServeClient:
        """A client talking to one shard process directly (not the router)."""
        (host, port), _pid = self.children[(shard, role)]
        return ServeClient(host, port, timeout=timeout)

    def monitor_rounds(self, monitor: str, timeout: float = 30.0) -> int:
        """The cluster's applied round count; retries across failover."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                with self.client(timeout=5.0) as client:
                    return int(client.query(monitor)["rounds"])
            except ServeClientError as exc:
                if exc.code == "no_such_monitor":
                    return 0
                if time.monotonic() > deadline:
                    raise
            except _RETRYABLE:
                if time.monotonic() > deadline:
                    raise
            time.sleep(0.2)

    def monitor_state(self, monitor: str, timeout: float = 30.0) -> dict:
        """The owning shard's full state document, via the router."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                with self.client(timeout=10.0) as client:
                    return client.handoff(monitor)["state"]
            except _RETRYABLE:
                if time.monotonic() > deadline:
                    raise
            time.sleep(0.2)

    def wait_shard_up(self, shard: int, timeout: float = 30.0) -> None:
        """Block until the router reports the shard healthy again."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                with self.client(timeout=5.0) as client:
                    status = client.stats()["cluster"]["shard_status"]
                if status.get(str(shard), {}).get("up"):
                    return
            except _RETRYABLE:
                pass
            time.sleep(0.2)
        raise TimeoutError(f"shard {shard} did not come back up")

    def wait_follower_rounds(
        self, shard: int, monitor: str, rounds: int, timeout: float = 30.0
    ) -> None:
        """Block until the shard's follower has synced ``rounds`` rounds."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                with self.child_client(shard, "follower", timeout=5.0) as client:
                    if int(client.query(monitor)["rounds"]) >= rounds:
                        return
            except _RETRYABLE:
                pass
            time.sleep(0.2)
        raise TimeoutError(
            f"shard {shard} follower never reached {rounds} rounds of {monitor!r}"
        )


def feed_rounds(
    harness: ClusterHarness,
    monitor: str,
    networks: Sequence[str],
    rounds: Sequence[Round],
    batch_size: int = 1,
    before_round: Optional[Callable[[int], None]] = None,
    timeout: float = 10.0,
    overall_timeout: float = 120.0,
) -> int:
    """Feed ``rounds`` through the router until all are applied.

    Survives shard deaths mid-stream: any error (refused connection,
    ``shard_unavailable``, timeout, torn connection) drops the client,
    re-queries the cluster's applied round count — which the durability
    contract makes authoritative — and resumes from exactly there, so
    nothing is skipped or double-applied. ``before_round(index)`` runs
    before the round at ``index`` is sent; chaos tests use it to place
    a SIGKILL at a seeded position mid-stream.
    """
    deadline = time.monotonic() + overall_timeout
    applied = harness.monitor_rounds(monitor)
    client: Optional[ServeClient] = None

    def drop() -> None:
        nonlocal client
        if client is not None:
            try:
                client.close()
            except OSError:
                pass
            client = None

    try:
        while applied < len(rounds):
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"fed {applied}/{len(rounds)} rounds before the deadline"
                )
            if before_round is not None:
                before_round(applied)
            try:
                if client is None:
                    client = harness.client(timeout=timeout)
                    if monitor not in client.list_monitors():
                        client.create(monitor, networks)
                if batch_size <= 1:
                    states, when = rounds[applied]
                    client.ingest(monitor, states, when)
                    applied += 1
                else:
                    chunk = list(rounds[applied : applied + batch_size])
                    response = client.ingest_batch(monitor, chunk)
                    if response.get("failed") is not None:
                        # Partial overlap after a lost ack: re-sync from
                        # the cluster's own count rather than guessing.
                        applied = harness.monitor_rounds(monitor)
                    else:
                        applied += len(chunk)
            except ServeClientError as exc:
                if exc.code == "monitor_exists":
                    continue  # lost the create's ack; it landed
                drop()
                time.sleep(0.2)
                applied = harness.monitor_rounds(monitor)
            except (ServeTimeout, FrameError, OSError):
                drop()
                time.sleep(0.2)
                applied = harness.monitor_rounds(monitor)
    finally:
        drop()
    return applied
